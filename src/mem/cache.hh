/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The model tracks presence only (tags, no data): dlsim is execution-
 * driven but functionally backed by AddressSpace, so caches exist to
 * measure hit/miss behaviour — the quantity the paper's Table 4
 * reports (I-cache and D-cache misses per kilo-instruction).
 *
 * Tags include an address-space id so that multi-process simulations
 * do not alias between processes (approximating physical tagging).
 */

#ifndef DLSIM_MEM_CACHE_HH
#define DLSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::mem
{

using isa::Addr;

/** Cache geometry and identification. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
};

/**
 * A single cache level. Allocate-on-miss, LRU replacement, no
 * write-back modelling (dirty state does not affect the counters the
 * reproduction needs).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * One way, packed to 16 bytes so an 8-way set scan touches two
     * host cache lines instead of three and the tag compare is a
     * single 64-bit equality. Layout of `key`:
     * tag[63:17] | asid[16:1] | valid[0]. Simulated addresses stay
     * far below 2^53 (47 tag bits + 6 line-offset bits), so the tag
     * never truncates. The snapshot wire format is unchanged — the
     * serializer decomposes the key into the original fields.
     * Public only as an opaque handle for the verified-touch API;
     * the storage itself stays private.
     */
    struct Way
    {
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
    };

    /**
     * Look up (and on miss, allocate) the line containing addr.
     * Inline so the MRU-compare hit — the overwhelming majority of
     * L1 traffic — resolves at the call site; set scan, victim
     * selection, and fill live in accessSlow().
     * @param addr Virtual address of the access.
     * @param asid Address-space id of the accessor.
     * @return True on hit.
     */
    bool
    access(Addr addr, std::uint16_t asid)
    {
        ++tick_;
        const std::uint64_t line = lineOf(addr);
        const std::size_t set = setOf(line);
        const std::uint64_t want = wayKey(line, asid);
        // Fast path: the fetch/data stream revisits the same line
        // back to back, so one compare against the set's MRU way
        // settles back-to-back L1 hits before the full scan.
        Way *base = &ways_[set * params_.assoc];
        Way &mru = base[mruWay_[set]];
        if (mru.key == want) {
            mru.lastUse = tick_;
            ++hits_;
            lastWay_ = &mru;
            return true;
        }
        // Full branchless scan inline: sequential code streams
        // through lines, so a hit in a *non*-MRU way (the previous
        // loop iteration's fill) is the second-most-common outcome
        // and is worth settling without a function call. Identical
        // updates to the old findWay() hit path, mruWay_ included.
        std::uint32_t hit = params_.assoc;
        for (std::uint32_t w = 0; w < params_.assoc; ++w)
            hit = base[w].key == want ? w : hit;
        if (hit != params_.assoc) {
            mruWay_[set] = hit;
            Way &way = base[hit];
            way.lastUse = tick_;
            ++hits_;
            lastWay_ = &way;
            return true;
        }
        return accessMiss(line, set, asid);
    }

    /** Probe without updating LRU or allocating. */
    bool contains(Addr addr, std::uint16_t asid) const;

    /**
     * Prefetch fill: allocate the line (LRU-updating) without
     * touching the demand hit/miss statistics. Fills are counted in
     * the dedicated prefetches() counter instead.
     */
    void prefetch(Addr addr, std::uint16_t asid);

    /**
     * Targeted invalidation: drop the line containing addr in the
     * given address space only (e.g. after a store to a GOT slot
     * observed by this core's own address space).
     */
    void invalidateLine(Addr addr, std::uint16_t asid);

    /**
     * Coherence invalidation: drop the line containing addr in every
     * address space. Multicore write-invalidate snoops operate on
     * physical lines and cannot know which ASIDs map them, so they
     * genuinely need the all-ASID variant.
     */
    void invalidateLineAllAsids(Addr addr);

    /** Invalidate everything. */
    void invalidateAll();

    /**
     * Repeat-access fast path: re-touch the way the immediately
     * preceding access() resolved to, skipping indexing and tag
     * compare. Precondition: the previous operation on this cache
     * was an access() to the same (line, asid) and nothing has
     * invalidated or refilled that way since (no prefetch, flush,
     * or invalidate in between). Under that precondition the effect
     * on every observable — tick, lastUse, hit count, MRU state,
     * contents — is byte-identical to calling access() again: a
     * repeat access() always takes the MRU-compare hit path, which
     * performs exactly these three updates.
     */
    void touchRepeat()
    {
        ++tick_;
        lastWay_->lastUse = tick_;
        ++hits_;
    }

    /**
     * `n` consecutive touchRepeat()s in one step. Byte-identical to
     * calling touchRepeat() n times (tick advances by n, lastUse
     * lands on the final tick, hits grow by n) under the same
     * precondition, since no other operation on this structure
     * observes the intermediate ticks.
     */
    void touchRepeatN(std::uint64_t n)
    {
        tick_ += n;
        lastWay_->lastUse = tick_;
        hits_ += n;
    }

    /** True when touchRepeat()'s way pointer is usable (the last
     *  access() hasn't been followed by an invalidate/flush/load). */
    bool canRepeat() const { return lastWay_ != nullptr; }

    /** @name Verified-touch memoisation
     *
     * Unlike touchRepeat(), no recency precondition: the caller
     * holds a Way pointer captured from an arbitrarily old access
     * (lastWayPtr()), and wayHolds() re-verifies it by key compare
     * before any state is touched. The pointer can never dangle —
     * ways_ is sized once and never reallocates — so staleness just
     * fails the compare. When it succeeds, the way genuinely holds
     * (line, asid) right now: a real access() would hit exactly
     * this way (a key is held by at most one way, since fills only
     * happen after a scan found no match) and perform exactly
     * touchAt()'s updates — including leaving mruWay_ pointing at
     * it, which both the inline MRU-hit and the scan-hit paths do.
     * Gated on power-of-two associativity so the way→set division
     * is a shift; every shipped geometry qualifies.
     * @{ */

    /** Way the most recent demand access() resolved to. */
    Way *lastWayPtr() { return lastWay_; }

    /** True when `w` holds the line of addr in `asid`. */
    bool
    wayHolds(const Way *w, Addr addr, std::uint16_t asid) const
    {
        return assocPow2_ && w != nullptr &&
               w->key == wayKey(lineOf(addr), asid);
    }

    /** The hit that wayHolds() proved: identical updates to an
     *  access() hit. @pre wayHolds(w, ...) just held. */
    void
    touchAt(Way *w)
    {
        ++tick_;
        w->lastUse = tick_;
        ++hits_;
        lastWay_ = w;
        const std::size_t slot =
            static_cast<std::size_t>(w - ways_.data());
        mruWay_[slot >> assocShift_] =
            static_cast<std::uint32_t>(slot & (params_.assoc - 1));
    }
    /** @} */

    const CacheParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    std::uint64_t prefetches() const { return prefetches_; }
    std::uint64_t evictions() const { return evictions_; }
    double missRate() const;
    void clearStats();

    /**
     * Register hit/miss/prefetch/eviction counters and the miss-rate
     * gauge under `prefix` (e.g. "dlsim.cpu.l1i").
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint contents, LRU state, and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    /** Key a valid (line, asid) pairing would carry. */
    static constexpr std::uint64_t
    wayKey(std::uint64_t line, std::uint16_t asid)
    {
        return (line << 17) |
               (static_cast<std::uint64_t>(asid) << 1) | 1;
    }

    /** Hit scan: the way holding (line, asid), or null. */
    Way *findWay(std::uint64_t line, std::size_t set,
                 std::uint16_t asid);

    /** access() miss tail: count, select a victim, fill. */
    bool accessMiss(std::uint64_t line, std::size_t set,
                    std::uint16_t asid);

    /** True when `way` holds (line, asid): one packed compare. */
    static bool wayMatches(const Way &way, std::uint64_t line,
                           std::uint16_t asid)
    {
        return way.key == wayKey(line, asid);
    }

    /**
     * Deterministic victim selection within a set: the first invalid
     * way if any, otherwise the first way with the minimum lastUse.
     * Shared by access() and prefetch() so demand and prefetch fills
     * can never diverge.
     */
    Way *findVictim(std::size_t set);

    /** Allocate (line, asid) into victim, counting evictions. */
    void fill(Way *victim, std::uint64_t line, std::uint16_t asid);

    std::uint64_t lineOf(Addr addr) const { return addr >> lineShift_; }
    std::size_t setOf(std::uint64_t line) const
    {
        // Power-of-two set counts use a mask; others (e.g. a 12MB
        // 16-way LLC) fall back to modulo.
        if (setsArePow2_)
            return static_cast<std::size_t>(line & (numSets_ - 1));
        return static_cast<std::size_t>(line % numSets_);
    }

    CacheParams params_;
    std::uint32_t lineShift_;
    std::uint64_t numSets_;
    bool setsArePow2_;
    /** touchAt()'s way→set conversion: log2(assoc) when assoc is a
     *  power of two (assocPow2_), which gates the verified-touch
     *  API on. */
    std::uint32_t assocShift_ = 0;
    bool assocPow2_ = false;
    std::vector<Way> ways_; // numSets * assoc, set-major.
    /**
     * Most-recently-used way per set: the fetch stream touches the
     * same line for several consecutive instructions, so a single
     * compare against the MRU way resolves the overwhelming
     * majority of L1 hits without scanning the set. Purely a
     * lookup accelerator — hit/miss/LRU/eviction behaviour (and so
     * every counter) is identical with or without it.
     */
    std::vector<std::uint32_t> mruWay_;
    /**
     * Way the last demand access() resolved to (hit or fill), for
     * touchRepeat(). Transient lookup state like mruWay_, but not
     * serialized: it is only meaningful between back-to-back
     * accesses within one run loop, never across a snapshot.
     */
    Way *lastWay_ = nullptr;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t prefetches_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_CACHE_HH
