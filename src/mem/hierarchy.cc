#include "mem/hierarchy.hh"

#include "snapshot/serializer.hh"

namespace dlsim::mem
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d),
      l2_(params.l2), l3_(params.l3), itlb_(params.itlb),
      dtlb_(params.dtlb)
{
}

AccessResult
Hierarchy::accessThrough(Tlb &tlb, Cache &l1, Addr addr,
                         std::uint16_t asid)
{
    AccessResult res;
    res.tlbHit = tlb.access(addr, asid);
    if (!res.tlbHit)
        res.extraCycles += params_.walkLatency;
    res.l1Hit = l1.access(addr, asid);
    if (res.l1Hit)
        return res;
    res.l2Hit = l2_.access(addr, asid);
    if (!res.l2Hit) {
        res.l3Hit = l3_.access(addr, asid);
        res.extraCycles += params_.l3Latency;
        if (!res.l3Hit)
            res.extraCycles += params_.memLatency;
    } else {
        res.extraCycles += params_.l2Latency;
    }
    return res;
}

AccessResult
Hierarchy::fetch(Addr addr, std::uint16_t asid)
{
    const auto res = accessThrough(itlb_, l1i_, addr, asid);
    if (params_.iPrefetchNextLine)
        l1i_.prefetch(addr + params_.l1i.lineBytes, asid);
    return res;
}

AccessResult
Hierarchy::data(Addr addr, std::uint16_t asid)
{
    return accessThrough(dtlb_, l1d_, addr, asid);
}

void
Hierarchy::flushTlbs()
{
    itlb_.flushAll();
    dtlb_.flushAll();
}

void
Hierarchy::invalidateDataLine(Addr addr)
{
    l1d_.invalidateLineAllAsids(addr);
    l2_.invalidateLineAllAsids(addr);
    l3_.invalidateLineAllAsids(addr);
}

void
Hierarchy::invalidateDataLine(Addr addr, std::uint16_t asid)
{
    l1d_.invalidateLine(addr, asid);
    l2_.invalidateLine(addr, asid);
    l3_.invalidateLine(addr, asid);
}

void
Hierarchy::save(snapshot::Serializer &s) const
{
    l1i_.save(s);
    l1d_.save(s);
    l2_.save(s);
    l3_.save(s);
    itlb_.save(s);
    dtlb_.save(s);
}

void
Hierarchy::load(snapshot::Deserializer &d)
{
    l1i_.load(d);
    l1d_.load(d);
    l2_.load(d);
    l3_.load(d);
    itlb_.load(d);
    dtlb_.load(d);
}

void
Hierarchy::clearStats()
{
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
    l3_.clearStats();
    itlb_.clearStats();
    dtlb_.clearStats();
}

void
Hierarchy::reportMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const
{
    l1i_.reportMetrics(reg, prefix + ".l1i");
    l1d_.reportMetrics(reg, prefix + ".l1d");
    l2_.reportMetrics(reg, prefix + ".l2");
    l3_.reportMetrics(reg, prefix + ".l3");
    itlb_.reportMetrics(reg, prefix + ".itlb");
    dtlb_.reportMetrics(reg, prefix + ".dtlb");
}

} // namespace dlsim::mem
