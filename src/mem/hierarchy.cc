#include "mem/hierarchy.hh"

#include "snapshot/serializer.hh"

namespace dlsim::mem
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d),
      l2_(params.l2), l3_(params.l3), itlb_(params.itlb),
      dtlb_(params.dtlb)
{
}

void
Hierarchy::flushTlbs()
{
    itlb_.flushAll();
    dtlb_.flushAll();
}

void
Hierarchy::invalidateDataLine(Addr addr)
{
    l1d_.invalidateLineAllAsids(addr);
    l2_.invalidateLineAllAsids(addr);
    l3_.invalidateLineAllAsids(addr);
}

void
Hierarchy::invalidateDataLine(Addr addr, std::uint16_t asid)
{
    l1d_.invalidateLine(addr, asid);
    l2_.invalidateLine(addr, asid);
    l3_.invalidateLine(addr, asid);
}

void
Hierarchy::save(snapshot::Serializer &s) const
{
    l1i_.save(s);
    l1d_.save(s);
    l2_.save(s);
    l3_.save(s);
    itlb_.save(s);
    dtlb_.save(s);
}

void
Hierarchy::load(snapshot::Deserializer &d)
{
    l1i_.load(d);
    l1d_.load(d);
    l2_.load(d);
    l3_.load(d);
    itlb_.load(d);
    dtlb_.load(d);
}

void
Hierarchy::clearStats()
{
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
    l3_.clearStats();
    itlb_.clearStats();
    dtlb_.clearStats();
}

void
Hierarchy::reportMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const
{
    l1i_.reportMetrics(reg, prefix + ".l1i");
    l1d_.reportMetrics(reg, prefix + ".l1d");
    l2_.reportMetrics(reg, prefix + ".l2");
    l3_.reportMetrics(reg, prefix + ".l3");
    itlb_.reportMetrics(reg, prefix + ".itlb");
    dtlb_.reportMetrics(reg, prefix + ".dtlb");
}

} // namespace dlsim::mem
