/**
 * @file
 * Translation lookaside buffer model.
 *
 * Like Cache, this is a presence model: functional translation is the
 * identity (dlsim runs on virtual addresses), but TLB hit/miss
 * behaviour drives the I-TLB and D-TLB miss counters of the paper's
 * Table 4 and the page-walk cycle penalties of the timing model.
 *
 * Entries are tagged with an address-space id. flushAll() models a
 * context switch without ASIDs; a simulation using ASIDs simply skips
 * the flush, exactly the choice discussed for the ABTB in §3.3 of the
 * paper.
 */

#ifndef DLSIM_MEM_TLB_HH
#define DLSIM_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "mem/address_space.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::mem
{

/** TLB geometry. */
struct TlbParams
{
    std::string name = "tlb";
    std::uint32_t entries = 64;
    std::uint32_t assoc = 4;
};

/** Set-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /**
     * Translate the page containing addr (allocating on miss).
     * @return True on hit.
     */
    bool access(Addr addr, std::uint16_t asid);

    /** Invalidate all entries (ASID-less context switch). */
    void flushAll();

    /** Invalidate entries of one address space. */
    void flushAsid(std::uint16_t asid);

    const TlbParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    void clearStats();

    /** Register hit/miss/eviction counters under `prefix`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint contents, LRU state, and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        std::uint16_t asid = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    /** First invalid entry in the set, else first LRU-minimal one. */
    Entry *findVictim(std::size_t set);

    TlbParams params_;
    std::uint64_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_TLB_HH
