/**
 * @file
 * Translation lookaside buffer model.
 *
 * Like Cache, this is a presence model: functional translation is the
 * identity (dlsim runs on virtual addresses), but TLB hit/miss
 * behaviour drives the I-TLB and D-TLB miss counters of the paper's
 * Table 4 and the page-walk cycle penalties of the timing model.
 *
 * Entries are tagged with an address-space id. flushAll() models a
 * context switch without ASIDs; a simulation using ASIDs simply skips
 * the flush, exactly the choice discussed for the ABTB in §3.3 of the
 * paper.
 */

#ifndef DLSIM_MEM_TLB_HH
#define DLSIM_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "mem/address_space.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::mem
{

/** TLB geometry. */
struct TlbParams
{
    std::string name = "tlb";
    std::uint32_t entries = 64;
    std::uint32_t assoc = 4;
};

/** Set-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /**
     * One entry, packed to 16 bytes so a 4-way set scan touches a
     * single host cache line and the tag compare is one 64-bit
     * equality. Layout of `key`: vpn[63:17] | asid[16:1] | valid[0]
     * (simulated addresses stay far below 2^59, so the vpn never
     * truncates). The snapshot wire format is unchanged — the
     * serializer decomposes the key into the original fields.
     * Public only as an opaque handle for the verified-touch API;
     * the storage itself stays private.
     */
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
    };

    /**
     * Translate the page containing addr (allocating on miss).
     * Inline: the hit scan is a 4-entry compare loop on the hot
     * path of every fetch and data access; the miss fill lives in
     * accessMiss().
     * @return True on hit.
     */
    bool
    access(Addr addr, std::uint16_t asid)
    {
        ++tick_;
        const std::uint64_t vpn = addr >> PageShift;
        const std::size_t set =
            static_cast<std::size_t>(vpn & (numSets_ - 1));
        const std::uint64_t want = entryKey(vpn, asid);
        Entry *base = &entries_[set * params_.assoc];
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            Entry &e = base[w];
            if (e.key == want) {
                e.lastUse = tick_;
                ++hits_;
                lastEntry_ = &e;
                return true;
            }
        }
        return accessMiss(vpn, set, asid);
    }

    /** Invalidate all entries (ASID-less context switch). */
    void flushAll();

    /** Invalidate entries of one address space. */
    void flushAsid(std::uint16_t asid);

    /**
     * Repeat-access fast path; the TLB twin of
     * Cache::touchRepeat(). Precondition: the previous operation on
     * this TLB was an access() for the same (page, asid) and no
     * flush happened since. Effect is byte-identical to calling
     * access() again (which would hit and perform exactly these
     * three updates).
     */
    void touchRepeat()
    {
        ++tick_;
        lastEntry_->lastUse = tick_;
        ++hits_;
    }

    /** `n` consecutive touchRepeat()s in one step; see
     *  Cache::touchRepeatN for the equivalence argument. */
    void touchRepeatN(std::uint64_t n)
    {
        tick_ += n;
        lastEntry_->lastUse = tick_;
        hits_ += n;
    }

    /** True when touchRepeat()'s entry pointer is usable. */
    bool canRepeat() const { return lastEntry_ != nullptr; }

    /** @name Verified-touch memoisation
     *
     * Unlike the touchRepeat() family, these carry NO recency
     * precondition: the caller holds an Entry pointer captured from
     * an arbitrarily old access (lastEntryPtr()), and entryHolds()
     * re-verifies it by key compare before any state is touched.
     * The pointer itself can never dangle — entries_ is sized once
     * in the constructor and never reallocates — so a stale pointer
     * simply fails the compare. When the compare succeeds the entry
     * genuinely holds (vpn, asid) right now: a real access() would
     * scan, hit exactly this entry (fills only happen when the scan
     * found no match, so a key is held by at most one entry), and
     * perform exactly touchAt()'s updates. Verification either
     * proves the hit or the caller falls back to access(); the
     * counters are byte-identical either way.
     * @{ */

    /** Entry the most recent access() resolved to (hit or fill). */
    Entry *lastEntryPtr() { return lastEntry_; }

    /** True when `e` holds a valid translation for addr's page in
     *  `asid` — one packed compare, no state change. */
    bool
    entryHolds(const Entry *e, Addr addr, std::uint16_t asid) const
    {
        return e != nullptr &&
               e->key == entryKey(addr >> PageShift, asid);
    }

    /** The hit that entryHolds() proved: identical updates to the
     *  access() scan-hit path. @pre entryHolds(e, ...) just held. */
    void
    touchAt(Entry *e)
    {
        ++tick_;
        e->lastUse = tick_;
        ++hits_;
        lastEntry_ = e;
    }
    /** @} */

    const TlbParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    void clearStats();

    /** Register hit/miss/eviction counters under `prefix`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint contents, LRU state, and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    /** Key a valid (vpn, asid) pairing would carry. */
    static constexpr std::uint64_t
    entryKey(std::uint64_t vpn, std::uint16_t asid)
    {
        return (vpn << 17) |
               (static_cast<std::uint64_t>(asid) << 1) | 1;
    }

    /** First invalid entry in the set, else first LRU-minimal one. */
    Entry *findVictim(std::size_t set);

    /** access() miss tail: count, evict, fill. */
    bool accessMiss(std::uint64_t vpn, std::size_t set,
                    std::uint16_t asid);

    TlbParams params_;
    std::uint64_t numSets_;
    std::vector<Entry> entries_;
    /** Entry the last access() resolved to (hit or fill), for
     *  touchRepeat(). Transient; not serialized. */
    Entry *lastEntry_ = nullptr;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_TLB_HH
