#include "check/fuzz.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "os/server.hh"
#include "sim/multicore.hh"
#include "snapshot/serializer.hh"
#include "stats/metrics.hh"
#include "stats/rng.hh"
#include "workload/engine.hh"

namespace dlsim::check
{

namespace
{

using workload::MachineConfig;
using workload::Workbench;
using workload::WorkloadParams;

/** One scheduled adversarial event. `a`/`b` are raw random draws
 *  mapped to operands (slot index, payload) at apply time. */
struct Event
{
    std::uint32_t request = 0;
    std::uint64_t offset = 0; ///< Retired insts into the request.
    std::uint32_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

WorkloadParams
workloadFor(const FuzzCase &c)
{
    WorkloadParams wl;
    wl.name = "fuzz";
    wl.seed = c.seed;
    wl.numLibs = std::max<std::uint32_t>(1, c.numLibs);
    wl.funcsPerLib = std::max<std::uint32_t>(2, c.funcsPerLib);
    wl.libFnInsts = 12;
    wl.unusedImportsPerModule = 4;
    wl.requests = {{"get", 1.0, 1, 2}, {"set", 0.5, 1, 3}};
    wl.stepsPerRequest = std::max<std::uint32_t>(1,
                                                 c.stepsPerRequest);
    wl.appWorkInsts = 4;
    wl.calledImports = std::min(
        std::max<std::uint32_t>(1, c.calledImports),
        wl.numLibs * wl.funcsPerLib);
    wl.interLibCallProb = 0.2;
    wl.libDataBytes = 1 << 12;
    wl.appDataBytes = 1 << 14;
    wl.hotDataBytes = 512;
    return wl;
}

MachineConfig
machineFor(const FuzzCase &c)
{
    MachineConfig mc;
    mc.enhanced = true;
    mc.abtbEntries = c.abtbEntries;
    mc.abtbAssoc = c.abtbAssoc;
    mc.bloomBits = c.bloomBits;
    mc.bloomHashes = c.bloomHashes;
    mc.explicitInvalidation = c.explicitInvalidation;
    mc.asidRetention = c.asidRetention;
    mc.pltStyle = c.armPlt ? linker::PltStyle::Arm
                           : linker::PltStyle::X86;
    mc.lazyBinding = c.lazyBinding;
    mc.aslr = c.aslr;
    // The oracle is the checker here; the core's built-in skip
    // assertion would preempt it (and hide the injected bug).
    mc.core.checkSkips = false;
    mc.core.skip.buggySuppressStoreFlush = c.injectFlushSuppression;
    return mc;
}

std::vector<Event>
makeSchedule(const FuzzCase &c)
{
    std::vector<Event> events;
    std::uint32_t mask = c.eventsMask;
    if (c.cores > 1)
        mask &= ~EvSnapshot; // MultiCoreSystem has no snapshots.
    if (c.server) {
        // The kernel owns context switches and snapshots don't
        // compose with live kernel threads; churn, GOT traffic,
        // and spurious flushes are the external agents.
        mask &= EvTenantChurn | EvRebind | EvGotRewriteSame |
                EvNoiseStore | EvSpuriousFlush;
    } else {
        mask &= ~EvTenantChurn; // Needs tenant plugins.
    }
    if (mask == 0 || c.eventCount == 0 || c.requests == 0)
        return events;

    std::vector<std::uint32_t> kinds;
    for (std::uint32_t bit = 0; bit < 7; ++bit) {
        if (mask & (1u << bit))
            kinds.push_back(1u << bit);
    }

    stats::Rng rng(c.seed ^ 0xadc0ffee5eedull);
    for (std::uint32_t i = 0; i < c.eventCount; ++i) {
        Event e;
        e.request =
            static_cast<std::uint32_t>(rng.nextBelow(c.requests));
        e.offset = 20 + rng.nextBelow(1500);
        e.kind = kinds[rng.nextBelow(kinds.size())];
        e.a = rng.next();
        e.b = rng.next();
        events.push_back(e);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &x, const Event &y) {
                         return x.request != y.request
                                    ? x.request < y.request
                                    : x.offset < y.offset;
                     });
    return events;
}

/** (module id, import index) universe for event operands. */
std::vector<std::pair<std::uint16_t, std::uint32_t>>
gotSlotUniverse(const linker::Image &image)
{
    std::vector<std::pair<std::uint16_t, std::uint32_t>> slots;
    for (const auto &m : image.modules()) {
        for (std::uint32_t k = 0;
             k < static_cast<std::uint32_t>(m.gotSlotAddrs.size());
             ++k) {
            slots.emplace_back(m.id, k);
        }
    }
    return slots;
}

void
accumulate(LockstepStats &into, const LockstepStats &from)
{
    into.checkedRetires += from.checkedRetires;
    into.verifiedSubstitutions += from.verifiedSubstitutions;
    into.resolverReplays += from.resolverReplays;
    into.externalWrites += from.externalWrites;
    into.walkedInstructions += from.walkedInstructions;
}

/** The accounting invariant: every observable ABTB flush has
 *  exactly one cause counter. */
void
checkFlushAccounting(const cpu::Core &core, const char *who)
{
    const auto *unit = core.skipUnit();
    if (!unit)
        return;
    const auto &st = unit->stats();
    const std::uint64_t sum = st.storeFlushes + st.coherenceFlushes +
                              st.contextSwitchFlushes +
                              st.explicitFlushes;
    if (unit->abtb().flushes() != sum) {
        std::ostringstream os;
        os << "flush accounting violated on " << who
           << ": abtb.flushes=" << unit->abtb().flushes()
           << " but cause counters sum to " << sum << "\n"
           << unit->dumpState();
        throw LockstepError(os.str());
    }
}

struct RunOutput
{
    std::string metricsJson;
    LockstepStats stats;
    core::SkipUnitStats skip; ///< Summed over cores.
};

std::string
metricsJson(const Workbench &wb)
{
    stats::MetricsDocument doc("dlsim_fuzz");
    auto &run = doc.addRun("fuzz");
    wb.reportMetrics(run.registry, "dlsim");
    // The page-translation cache restarts cold after a restore, so
    // its hit/miss split is the one legitimate difference between a
    // straight run and a save/restore run. Strip it before the
    // byte-compare; everything architectural must still match.
    run.registry.erasePrefix("dlsim.mem.ptc.");
    return doc.toJson();
}

void
addSkipStats(core::SkipUnitStats &into, const cpu::Core &core)
{
    if (const auto *unit = core.skipUnit()) {
        const auto &st = unit->stats();
        into.substitutions += st.substitutions;
        into.populations += st.populations;
        into.storeFlushes += st.storeFlushes;
        into.coherenceFlushes += st.coherenceFlushes;
        into.contextSwitchFlushes += st.contextSwitchFlushes;
        into.explicitFlushes += st.explicitFlushes;
        into.falsePositiveFlushes += st.falsePositiveFlushes;
    }
}

/**
 * Single-core driver: requests run incrementally so events (and
 * snapshot round-trips) land at scheduled retire offsets. Offsets
 * use >=-semantics against instructionsRetired() — the resolver's
 * synthetic instruction cost can jump past an offset.
 */
RunOutput
runSingleCore(const FuzzCase &c, const WorkloadParams &wl,
              const MachineConfig &mc,
              const std::vector<Event> &schedule,
              bool apply_snapshots)
{
    auto wb = std::make_unique<Workbench>(wl, mc);
    auto checker = std::make_unique<LockstepChecker>(wb->core());
    wb->core().setRetireObserver(checker.get());

    const auto slots = gotSlotUniverse(wb->image());
    std::uint16_t asid_toggle = 0;
    LockstepStats accum{};

    const auto applyEvent = [&](const Event &e) {
        switch (e.kind) {
          case EvGotRewriteSame: {
            if (slots.empty())
                break;
            const auto [mid, imp] = slots[e.a % slots.size()];
            const isa::Addr slot =
                wb->image().moduleAt(mid).gotSlotAddrs[imp];
            auto &as = wb->image().addressSpace();
            as.poke64(slot, as.peek64(slot));
            wb->core().onExternalGotWrite(slot);
            break;
          }
          case EvRebind: {
            if (slots.empty())
                break;
            const auto [mid, imp] = slots[e.a % slots.size()];
            const auto &m = wb->image().moduleAt(mid);
            const isa::Addr slot = m.gotSlotAddrs[imp];
            wb->image().addressSpace().poke64(slot,
                                              m.lazyGotValue(imp));
            wb->core().onExternalGotWrite(slot);
            // §3.4 software contract: in the explicit arm a GOT
            // rewrite must be followed by an architectural flush.
            if (mc.explicitInvalidation && wb->core().skipUnit())
                wb->core().skipUnit()->explicitFlush();
            break;
          }
          case EvNoiseStore: {
            const auto &app = wb->image().moduleAt(0);
            if (wl.appDataBytes < 8)
                break;
            const isa::Addr addr =
                app.dataBase + (e.a % (wl.appDataBytes / 8)) * 8;
            wb->image().addressSpace().poke64(addr, e.b);
            wb->core().onExternalGotWrite(addr);
            break;
          }
          case EvContextSwitch:
            asid_toggle ^= 1;
            wb->core().contextSwitch(&wb->image(), &wb->linker(),
                                     asid_toggle);
            break;
          case EvSpuriousFlush:
            if (wb->core().skipUnit())
                wb->core().skipUnit()->explicitFlush();
            break;
          case EvSnapshot: {
            if (!apply_snapshots)
                break;
            const auto bytes = workload::snapshotWorkbench(*wb);
            accumulate(accum, checker->stats());
            auto fresh = std::make_unique<Workbench>(wl, mc);
            workload::restoreWorkbench(*fresh, bytes.data(),
                                       bytes.size());
            wb = std::move(fresh);
            checker =
                std::make_unique<LockstepChecker>(wb->core());
            wb->core().setRetireObserver(checker.get());
            break;
          }
        }
    };

    std::size_t ev = 0;
    for (std::uint32_t r = 0; r < c.requests; ++r) {
        wb->beginRequest();
        const std::uint64_t base =
            wb->core().instructionsRetired();
        bool done = false;
        while (true) {
            const std::uint64_t progress =
                wb->core().instructionsRetired() - base;
            while (ev < schedule.size() &&
                   schedule[ev].request == r &&
                   schedule[ev].offset <= progress) {
                applyEvent(schedule[ev]);
                ++ev;
            }
            if (done)
                break;
            const std::uint64_t next_stop =
                (ev < schedule.size() && schedule[ev].request == r)
                    ? schedule[ev].offset
                    : UINT64_MAX;
            const std::uint64_t chunk =
                next_stop == UINT64_MAX
                    ? 100000
                    : std::max<std::uint64_t>(1,
                                              next_stop - progress);
            done = wb->stepRequest(chunk);
        }
        // Events the request finished before: apply between
        // requests (external agents don't stop when a call does).
        while (ev < schedule.size() && schedule[ev].request == r) {
            applyEvent(schedule[ev]);
            ++ev;
        }
    }

    accumulate(accum, checker->stats());
    checkFlushAccounting(wb->core(), "core0");

    RunOutput out;
    out.stats = accum;
    addSkipStats(out.skip, wb->core());
    out.metricsJson = metricsJson(*wb);
    return out;
}

/**
 * Multicore driver: rounds of runOnAll() (deterministic round-robin
 * interleaving; cross-core stores reach sibling checkers through
 * the coherence snoop) with external events applied at round
 * boundaries and broadcast to every core.
 */
RunOutput
runMultiCore(const FuzzCase &c, const WorkloadParams &wl,
             const MachineConfig &mc,
             const std::vector<Event> &schedule)
{
    Workbench wb(wl, mc);
    sim::MultiCoreParams mp;
    mp.numCores = c.cores;
    mp.quantum = 100 + c.seed % 151;
    mp.core = workload::makeCoreParams(mc);
    sim::MultiCoreSystem sys(mp, wb.image(), wb.linker(),
                             wb.loader().stackTop());

    // Checkers fork reference memory at attach, so they must be
    // built after the system maps the per-thread stacks.
    std::vector<std::unique_ptr<LockstepChecker>> checkers;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        checkers.push_back(
            std::make_unique<LockstepChecker>(sys.core(i)));
        sys.core(i).setRetireObserver(checkers.back().get());
    }

    const auto slots = gotSlotUniverse(wb.image());
    std::vector<std::uint16_t> asid_toggle(sys.numCores(), 0);

    const auto applyEvent = [&](const Event &e) {
        switch (e.kind) {
          case EvGotRewriteSame: {
            if (slots.empty())
                break;
            const auto [mid, imp] = slots[e.a % slots.size()];
            const isa::Addr slot =
                wb.image().moduleAt(mid).gotSlotAddrs[imp];
            auto &as = wb.image().addressSpace();
            as.poke64(slot, as.peek64(slot));
            sys.broadcastGotWrite(slot);
            break;
          }
          case EvRebind: {
            if (slots.empty())
                break;
            const auto [mid, imp] = slots[e.a % slots.size()];
            const auto &m = wb.image().moduleAt(mid);
            const isa::Addr slot = m.gotSlotAddrs[imp];
            wb.image().addressSpace().poke64(slot,
                                             m.lazyGotValue(imp));
            sys.broadcastGotWrite(slot);
            if (mc.explicitInvalidation) {
                // §3.4 on SMP: software flushes every hart.
                for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
                    if (auto *unit = sys.core(i).skipUnit())
                        unit->explicitFlush();
                }
            }
            break;
          }
          case EvNoiseStore: {
            const auto &app = wb.image().moduleAt(0);
            if (wl.appDataBytes < 8)
                break;
            const isa::Addr addr =
                app.dataBase + (e.a % (wl.appDataBytes / 8)) * 8;
            wb.image().addressSpace().poke64(addr, e.b);
            sys.broadcastGotWrite(addr);
            break;
          }
          case EvContextSwitch: {
            const std::uint32_t i =
                static_cast<std::uint32_t>(e.a % sys.numCores());
            asid_toggle[i] ^= 1;
            sys.core(i).contextSwitch(&wb.image(), &wb.linker(),
                                      asid_toggle[i]);
            break;
          }
          case EvSpuriousFlush: {
            const std::uint32_t i =
                static_cast<std::uint32_t>(e.a % sys.numCores());
            if (auto *unit = sys.core(i).skipUnit())
                unit->explicitFlush();
            break;
          }
          default:
            break;
        }
    };

    stats::Rng rng(c.seed ^ 0x9c0fe5ull);
    std::size_t ev = 0;
    for (std::uint32_t r = 0; r < c.requests; ++r) {
        const auto kind = static_cast<std::uint32_t>(
            rng.nextBelow(wl.requests.size()));
        const auto &rc = wl.requests[kind];
        std::vector<std::pair<std::uint64_t, std::uint64_t>> args;
        for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
            args.emplace_back(rng.nextRange(rc.minWork, rc.maxWork),
                              rng.next() | 1);
        }
        sys.runOnAll(wb.handlerAddress(kind), args);
        while (ev < schedule.size() && schedule[ev].request == r) {
            applyEvent(schedule[ev]);
            ++ev;
        }
    }

    RunOutput out;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        accumulate(out.stats, checkers[i]->stats());
        const std::string who = "core" + std::to_string(i);
        checkFlushAccounting(sys.core(i), who.c_str());
        addSkipStats(out.skip, sys.core(i));
    }
    return out;
}

/**
 * Server driver: an os::Server (kernel scheduler, sockets, tenant
 * plugins) runs the request traffic while scheduled events inject
 * tenant dlclose churn, GOT rewrites, noise stores, and spurious
 * flushes between scheduler rounds. The kernel itself supplies the
 * rest of the adversarial surface — quantum-expiry context switches
 * in the middle of trampoline sequences, ASID switches per tenant,
 * and pipe-blocked thread wakeups (the pipe capacity is sized so
 * 32-byte request records need partial writes). Every core runs
 * under the lockstep oracle for the whole serve.
 */
RunOutput
runServer(const FuzzCase &c, const WorkloadParams &wl,
          const MachineConfig &mc,
          const std::vector<Event> &schedule)
{
    Workbench wb(wl, mc);
    sim::MultiCoreParams mp;
    mp.numCores = std::max<std::uint32_t>(1, c.cores);
    mp.core = workload::makeCoreParams(mc);

    // Base-workload GOT universe only: tenant modules come and go
    // with churn, so their slots are not stable event operands.
    const auto slots = gotSlotUniverse(wb.image());

    os::ServerParams sp;
    sp.workers = 2;
    sp.clients = 3;
    sp.tenants = std::max<std::uint32_t>(1, c.tenants);
    sp.requests = std::uint64_t{4} * std::max<std::uint32_t>(
                                         1, c.requests);
    sp.churnPeriod = 0; // Churn arrives as events, not a period.
    sp.backlog = 2;
    sp.seed = c.seed;
    sp.kernel.quantum = 100 + c.seed % 151;
    sp.kernel.pipeCapacity = 48 + c.seed % 64;
    os::Server server(wb, mp, sp);
    auto &sys = server.system();

    // After construction: the server mapped the worker stacks and
    // loaded the tenant + dispatch modules, so the checkers' forked
    // reference memory is complete. Churn-time remaps resync them
    // through the server's observer fast-forward.
    std::vector<std::unique_ptr<LockstepChecker>> checkers;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        checkers.push_back(
            std::make_unique<LockstepChecker>(sys.core(i)));
        sys.core(i).setRetireObserver(checkers.back().get());
    }

    const auto applyEvent = [&](const Event &e) {
        switch (e.kind) {
          case EvTenantChurn:
            server.requestChurn(static_cast<std::uint32_t>(
                e.a % sp.tenants));
            break;
          case EvGotRewriteSame: {
            if (slots.empty())
                break;
            const auto [mid, imp] = slots[e.a % slots.size()];
            const isa::Addr slot =
                wb.image().moduleAt(mid).gotSlotAddrs[imp];
            auto &as = wb.image().addressSpace();
            as.poke64(slot, as.peek64(slot));
            sys.broadcastGotWrite(slot);
            break;
          }
          case EvRebind: {
            if (slots.empty())
                break;
            const auto [mid, imp] = slots[e.a % slots.size()];
            const auto &m = wb.image().moduleAt(mid);
            const isa::Addr slot = m.gotSlotAddrs[imp];
            wb.image().addressSpace().poke64(slot,
                                             m.lazyGotValue(imp));
            sys.broadcastGotWrite(slot);
            if (mc.explicitInvalidation) {
                for (std::uint32_t i = 0; i < sys.numCores();
                     ++i) {
                    if (auto *unit = sys.core(i).skipUnit())
                        unit->explicitFlush();
                }
            }
            break;
          }
          case EvNoiseStore: {
            const auto &app = wb.image().moduleAt(0);
            if (wl.appDataBytes < 8)
                break;
            const isa::Addr addr =
                app.dataBase + (e.a % (wl.appDataBytes / 8)) * 8;
            wb.image().addressSpace().poke64(addr, e.b);
            sys.broadcastGotWrite(addr);
            break;
          }
          case EvSpuriousFlush: {
            const std::uint32_t i =
                static_cast<std::uint32_t>(e.a % sys.numCores());
            if (auto *unit = sys.core(i).skipUnit())
                unit->explicitFlush();
            break;
          }
          default:
            break;
        }
    };

    // Interleave scheduler rounds with events, then drain.
    for (const auto &e : schedule) {
        if (!server.runRounds(1 + e.offset % 9))
            applyEvent(e);
    }
    server.run();

    RunOutput out;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        accumulate(out.stats, checkers[i]->stats());
        const std::string who = "core" + std::to_string(i);
        checkFlushAccounting(sys.core(i), who.c_str());
        addSkipStats(out.skip, sys.core(i));
    }
    return out;
}

void
fold(FuzzResult &res, const RunOutput &out)
{
    accumulate(res.stats, out.stats);
    res.substitutions += out.skip.substitutions;
    res.storeFlushes += out.skip.storeFlushes;
    res.coherenceFlushes += out.skip.coherenceFlushes;
    res.contextSwitchFlushes += out.skip.contextSwitchFlushes;
    res.explicitFlushes += out.skip.explicitFlushes;
}

} // namespace

FuzzCase
caseFromSeed(std::uint64_t seed)
{
    stats::Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xf022ull);
    FuzzCase c;
    c.seed = seed;
    c.cores = rng.nextBool(0.25)
                  ? 2 + static_cast<std::uint32_t>(rng.nextBelow(2))
                  : 1;
    c.requests =
        6 + static_cast<std::uint32_t>(rng.nextBelow(10));

    c.eventsMask = 0;
    if (rng.nextBool(0.5))
        c.eventsMask |= EvGotRewriteSame;
    if (rng.nextBool(0.5))
        c.eventsMask |= EvRebind;
    if (rng.nextBool(0.3))
        c.eventsMask |= EvNoiseStore;
    if (rng.nextBool(0.3))
        c.eventsMask |= EvContextSwitch;
    if (rng.nextBool(0.3))
        c.eventsMask |= EvSpuriousFlush;
    if (rng.nextBool(0.3))
        c.eventsMask |= EvSnapshot;
    c.eventCount =
        c.eventsMask
            ? 2 + static_cast<std::uint32_t>(rng.nextBelow(8))
            : 0;

    c.explicitInvalidation = rng.nextBool(0.25);
    c.asidRetention = rng.nextBool(0.25);
    c.armPlt = rng.nextBool(0.35);
    c.lazyBinding = !rng.nextBool(0.2);
    c.aslr = rng.nextBool(0.25);
    c.abtbEntries =
        1u << (2 + static_cast<std::uint32_t>(rng.nextBelow(7)));
    c.abtbAssoc = std::min(
        c.abtbEntries,
        1u << static_cast<std::uint32_t>(rng.nextBelow(3)));
    c.bloomBits =
        1u << (6 + static_cast<std::uint32_t>(rng.nextBelow(7)));
    c.bloomHashes =
        1 + static_cast<std::uint32_t>(rng.nextBelow(6));

    c.numLibs = 2 + static_cast<std::uint32_t>(rng.nextBelow(5));
    c.funcsPerLib =
        4 + static_cast<std::uint32_t>(rng.nextBelow(24));
    c.calledImports =
        4 + static_cast<std::uint32_t>(rng.nextBelow(40));
    c.calledImports =
        std::min(c.calledImports, c.numLibs * c.funcsPerLib);
    c.stepsPerRequest =
        6 + static_cast<std::uint32_t>(rng.nextBelow(16));

    // Server mode (drawn last so non-server cases keep the shapes
    // earlier corpora had): OS scheduler + sockets + tenant churn.
    c.server = rng.nextBool(0.2);
    if (c.server) {
        c.tenants =
            2 + static_cast<std::uint32_t>(rng.nextBelow(2));
        c.requests = std::min<std::uint32_t>(c.requests, 10);
        if (rng.nextBool(0.8))
            c.eventsMask |= EvTenantChurn;
        if (c.eventsMask && c.eventCount == 0)
            c.eventCount = 2 + static_cast<std::uint32_t>(
                                   rng.nextBelow(6));
    }
    return c;
}

std::string
reproLine(const FuzzCase &c)
{
    std::ostringstream os;
    os << "dlsim_fuzz --seed " << c.seed << " --cores " << c.cores
       << " --requests " << c.requests << " --events "
       << c.eventsMask << " --event-count " << c.eventCount
       << " --abtb-entries " << c.abtbEntries << " --abtb-assoc "
       << c.abtbAssoc << " --bloom-bits " << c.bloomBits
       << " --bloom-hashes " << c.bloomHashes << " --num-libs "
       << c.numLibs << " --funcs-per-lib " << c.funcsPerLib
       << " --called-imports " << c.calledImports << " --steps "
       << c.stepsPerRequest;
    if (c.server)
        os << " --server --tenants " << c.tenants;
    if (c.explicitInvalidation)
        os << " --explicit-invalidation";
    if (c.asidRetention)
        os << " --asid-retention";
    if (c.armPlt)
        os << " --arm-plt";
    if (!c.lazyBinding)
        os << " --eager-binding";
    if (c.aslr)
        os << " --aslr";
    if (c.injectFlushSuppression)
        os << " --inject-bug-config";
    return os.str();
}

FuzzResult
runCase(const FuzzCase &c)
{
    FuzzResult res;
    res.failingCase = c;
    try {
        const auto wl = workloadFor(c);
        const auto mc = machineFor(c);
        const auto schedule = makeSchedule(c);

        if (c.server) {
            fold(res, runServer(c, wl, mc, schedule));
            return res;
        }
        if (c.cores > 1) {
            fold(res, runMultiCore(c, wl, mc, schedule));
            return res;
        }

        const auto with =
            runSingleCore(c, wl, mc, schedule, true);
        fold(res, with);

        // Snapshot equivalence: a save/restore round-trip is
        // architecturally and microarchitecturally invisible, so a
        // run with the snapshot events skipped must produce a
        // byte-identical metrics document.
        const bool snaps =
            (c.eventsMask & EvSnapshot) && c.eventCount > 0;
        if (snaps) {
            const auto without =
                runSingleCore(c, wl, mc, schedule, false);
            accumulate(res.stats, without.stats);
            if (with.metricsJson != without.metricsJson) {
                res.passed = false;
                res.failure =
                    "snapshot equivalence violated: metrics with "
                    "mid-run save/restore differ from the "
                    "straight run";
            }
        }
        return res;
    } catch (const std::exception &e) {
        res.passed = false;
        res.failure = e.what();
        return res;
    }
}

FuzzCase
shrinkCase(const FuzzCase &c, std::uint32_t maxRuns,
           std::string *failure)
{
    FuzzCase best = c;
    std::uint32_t runs = 0;

    const auto stillFails = [&](const FuzzCase &cand,
                                std::string *why) {
        if (runs >= maxRuns)
            return false;
        ++runs;
        const auto r = runCase(cand);
        if (!r.passed && why)
            *why = r.failure;
        return !r.passed;
    };

    using Mutation = std::function<bool(FuzzCase &)>;
    const std::vector<Mutation> mutations = {
        [](FuzzCase &x) {
            if (x.requests <= 1)
                return false;
            x.requests /= 2;
            return true;
        },
        [](FuzzCase &x) {
            if (x.eventCount == 0)
                return false;
            x.eventCount /= 2;
            if (x.eventCount == 0)
                x.eventsMask = 0;
            return true;
        },
        [](FuzzCase &x) {
            if (x.cores <= 1)
                return false;
            x.cores = 1;
            return true;
        },
        [](FuzzCase &x) {
            if (x.numLibs <= 1)
                return false;
            x.numLibs /= 2;
            x.calledImports = std::min(
                x.calledImports, x.numLibs * x.funcsPerLib);
            return true;
        },
        [](FuzzCase &x) {
            if (x.calledImports <= 1)
                return false;
            x.calledImports /= 2;
            return true;
        },
        [](FuzzCase &x) {
            if (x.stepsPerRequest <= 1)
                return false;
            x.stepsPerRequest /= 2;
            return true;
        },
        [](FuzzCase &x) {
            if (!x.asidRetention)
                return false;
            x.asidRetention = false;
            return true;
        },
        [](FuzzCase &x) {
            if (!x.aslr)
                return false;
            x.aslr = false;
            return true;
        },
        [](FuzzCase &x) {
            if (!x.armPlt)
                return false;
            x.armPlt = false;
            return true;
        },
    };

    bool improved = true;
    while (improved && runs < maxRuns) {
        improved = false;
        for (const auto &mutate : mutations) {
            FuzzCase cand = best;
            if (!mutate(cand))
                continue;
            std::string why;
            if (stillFails(cand, &why)) {
                best = cand;
                if (failure)
                    *failure = why;
                improved = true;
            }
        }
    }
    return best;
}

std::vector<FuzzCase>
smokeCases()
{
    std::vector<FuzzCase> cases;

    // Hand-picked archetypes: deterministic coverage of both PLT
    // styles, the §3.4 arm, ASID retention, rebind storms against
    // tiny geometries, multicore coherence, and snapshot
    // round-trips.
    {
        FuzzCase c; // Plain lazy x86: resolver storm at startup.
        c.seed = 101;
        c.requests = 10;
        cases.push_back(c);
    }
    {
        FuzzCase c; // ARM trampolines: pattern window + scratch regs.
        c.seed = 102;
        c.armPlt = true;
        c.requests = 10;
        cases.push_back(c);
    }
    {
        FuzzCase c; // §3.4 explicit arm, rebinds force AbtbFlush.
        c.seed = 103;
        c.explicitInvalidation = true;
        c.eventsMask = EvRebind | EvSpuriousFlush;
        c.eventCount = 8;
        c.requests = 12;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Rebind + same-value storm on a hot small set.
        c.seed = 104;
        c.eventsMask = EvRebind | EvGotRewriteSame;
        c.eventCount = 12;
        c.requests = 14;
        c.calledImports = 6;
        c.numLibs = 2;
        c.funcsPerLib = 8;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Undersized bloom: false-positive flush storm.
        c.seed = 105;
        c.bloomBits = 64;
        c.bloomHashes = 2;
        c.eventsMask = EvNoiseStore | EvGotRewriteSame;
        c.eventCount = 10;
        c.requests = 10;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Context-switch storm with ASID retention.
        c.seed = 106;
        c.asidRetention = true;
        c.eventsMask = EvContextSwitch | EvRebind;
        c.eventCount = 10;
        c.requests = 12;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Context-switch storm without retention.
        c.seed = 107;
        c.eventsMask = EvContextSwitch;
        c.eventCount = 8;
        c.requests = 10;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Snapshot round-trips mid-run + equivalence.
        c.seed = 108;
        c.eventsMask = EvSnapshot | EvRebind;
        c.eventCount = 6;
        c.requests = 10;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Two cores: cross-core resolver coherence.
        c.seed = 109;
        c.cores = 2;
        c.requests = 8;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Three cores + external rebind broadcasts.
        c.seed = 110;
        c.cores = 3;
        c.eventsMask = EvRebind | EvGotRewriteSame;
        c.eventCount = 8;
        c.requests = 8;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Multicore + ARM + tiny ABTB (evictions).
        c.seed = 111;
        c.cores = 2;
        c.armPlt = true;
        c.abtbEntries = 8;
        c.abtbAssoc = 2;
        c.requests = 8;
        cases.push_back(c);
    }
    {
        FuzzCase c; // Eager binding + ASLR: no resolver traps.
        c.seed = 112;
        c.lazyBinding = false;
        c.aslr = true;
        c.eventsMask = EvRebind; // Re-lazifies eagerly-bound slots.
        c.eventCount = 4;
        c.requests = 8;
        cases.push_back(c);
    }
    {
        FuzzCase c; // OS server: churn storm, ASID-tagged ABTB.
        c.seed = 113;
        c.server = true;
        c.cores = 2;
        c.tenants = 2;
        c.asidRetention = true;
        c.eventsMask = EvTenantChurn | EvRebind;
        c.eventCount = 8;
        c.requests = 8;
        cases.push_back(c);
    }
    {
        FuzzCase c; // OS server, no retention: every ASID switch
        c.seed = 114; // flushes mid-trampoline state (§3.3).
        c.server = true;
        c.cores = 3;
        c.tenants = 3;
        c.eventsMask = EvTenantChurn | EvGotRewriteSame |
                       EvNoiseStore | EvSpuriousFlush;
        c.eventCount = 10;
        c.requests = 8;
        cases.push_back(c);
    }

    // Seeded frontier on top of the archetypes.
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        cases.push_back(caseFromSeed(seed));
    return cases;
}

} // namespace dlsim::check
