/**
 * @file
 * Adversarial fuzz harness for the ABTB correctness contract.
 *
 * A FuzzCase is a fully self-describing experiment: workload shape,
 * machine configuration (PLT style, ABTB/bloom geometry, §3.4
 * explicit-invalidation arm, ASID retention), and a seeded schedule
 * of adversarial events injected between retired instructions —
 * same-value GOT rewrites, lazy-rebind storms (GOT slots reset to
 * their lazy re-entry values mid-run), external noise stores,
 * context switches, spurious explicit flushes, snapshot
 * save/restore at random retire points, and cross-core stores via
 * sim::MultiCoreSystem.
 *
 * Every case runs under the LockstepChecker oracle; any divergence,
 * reference fault, snapshot-equivalence mismatch, or violation of
 * the flush-accounting invariant
 *
 *     Abtb::flushes() == storeFlushes + coherenceFlushes
 *                        + contextSwitchFlushes + explicitFlushes
 *
 * fails the case. Failures are greedily shrunk to a minimal case and
 * reported as a replayable `dlsim_fuzz` command line.
 */

#ifndef DLSIM_CHECK_FUZZ_HH
#define DLSIM_CHECK_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/lockstep.hh"

namespace dlsim::check
{

/** Adversarial event kinds (bitmask in FuzzCase::eventsMask). */
enum FuzzEvent : std::uint32_t
{
    /** Rewrite a GOT slot with its current value (no architectural
     *  change; coherence must still be conservative-safe). */
    EvGotRewriteSame = 1u << 0,
    /** Reset a GOT slot to its lazy re-entry value: the next call
     *  must re-trap to the resolver, and any live ABTB entry backed
     *  by the slot must die (§3.2 / §3.4). */
    EvRebind = 1u << 1,
    /** External store of a random value into application data (must
     *  be architecturally visible, must not corrupt the oracle). */
    EvNoiseStore = 1u << 2,
    /** OS context switch with an alternating ASID (§3.3). */
    EvContextSwitch = 1u << 3,
    /** AbtbFlush with no preceding rebind (architectural nop). */
    EvSpuriousFlush = 1u << 4,
    /** Serialize the workbench and continue from a restore into a
     *  fresh one; single-core cases also verify byte-identical
     *  final metrics against a snapshot-free run. */
    EvSnapshot = 1u << 5,
    /** Server mode only: dlclose/dlopen a tenant plugin mid-run
     *  (deferred until quiescent when requests are in flight); the
     *  GOT resets are broadcast as §3.2 coherence traffic. */
    EvTenantChurn = 1u << 6,
};

/** One self-describing fuzz experiment. */
struct FuzzCase
{
    std::uint64_t seed = 1;

    /** 1 = single-core driver; >1 = sim::MultiCoreSystem. */
    std::uint32_t cores = 1;
    std::uint32_t requests = 10;

    /** Drive an os::Server (kernel scheduler + sockets + tenant
     *  plugins) instead of direct request calls: quantum-expiry
     *  context switches inside trampoline sequences, pipe-blocked
     *  thread wakeups, and EvTenantChurn dlclose storms, all under
     *  the per-core lockstep oracle. */
    bool server = false;
    /** Tenant plugin count (server mode). */
    std::uint32_t tenants = 2;

    /** FuzzEvent bitmask and number of scheduled events. */
    std::uint32_t eventsMask = 0;
    std::uint32_t eventCount = 0;

    /** Machine configuration. */
    bool explicitInvalidation = false;
    bool asidRetention = false;
    bool armPlt = false;
    bool lazyBinding = true;
    bool aslr = false;
    std::uint32_t abtbEntries = 256;
    std::uint32_t abtbAssoc = 4;
    std::uint32_t bloomBits = 1024;
    std::uint32_t bloomHashes = 4;

    /** Workload shape. */
    std::uint32_t numLibs = 4;
    std::uint32_t funcsPerLib = 16;
    std::uint32_t calledImports = 24;
    std::uint32_t stepsPerRequest = 12;

    /** Fault injection: suppress the §3.2 store flush, proving the
     *  oracle catches a broken invalidation path. */
    bool injectFlushSuppression = false;
};

/** Outcome of one case (or one shrunk failure). */
struct FuzzResult
{
    bool passed = true;
    /** Divergence / invariant report of the first failure. */
    std::string failure;
    /** The case that failed (after shrinking, when requested). */
    FuzzCase failingCase;

    /** Aggregate oracle work (summed over cores and sub-runs). */
    LockstepStats stats;
    /** Aggregate mechanism activity (summed over cores). */
    std::uint64_t substitutions = 0;
    std::uint64_t storeFlushes = 0;
    std::uint64_t coherenceFlushes = 0;
    std::uint64_t contextSwitchFlushes = 0;
    std::uint64_t explicitFlushes = 0;
};

/** Derive a randomized case from a seed (the fuzzing frontier). */
FuzzCase caseFromSeed(std::uint64_t seed);

/** Replayable `dlsim_fuzz` command line reproducing `c`. */
std::string reproLine(const FuzzCase &c);

/** Run one case under the oracle. Never throws; failures land in
 *  FuzzResult::failure. */
FuzzResult runCase(const FuzzCase &c);

/**
 * Greedily shrink a failing case: repeatedly try halving counts and
 * clearing flags, keeping any mutation that still fails, within a
 * budget of `maxRuns` re-executions. @return The smallest failing
 * case found (at worst `c` itself), with *failure set to its report.
 */
FuzzCase shrinkCase(const FuzzCase &c, std::uint32_t maxRuns,
                    std::string *failure);

/** The deterministic --smoke corpus: hand-picked archetypes (both
 *  PLT styles, §3.4 arm, ASID retention, rebind storms, multicore,
 *  snapshot round-trips, undersized bloom, OS-server tenant churn)
 *  plus seeded cases. */
std::vector<FuzzCase> smokeCases();

} // namespace dlsim::check

#endif // DLSIM_CHECK_FUZZ_HH
