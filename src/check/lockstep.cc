#include "check/lockstep.hh"

#include <array>
#include <sstream>

namespace dlsim::check
{

namespace
{

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

LockstepChecker::LockstepChecker(cpu::Core &core)
    : core_(core), ref_(core.image())
{
    resync();
}

void
LockstepChecker::resync()
{
    ref_.sync(core_.state());
}

void
LockstepChecker::diverge(const std::string &kind,
                         const std::string &detail,
                         std::uint64_t cycle,
                         std::uint64_t retire_index, isa::Addr pc)
{
    std::ostringstream os;
    os << "lockstep divergence [" << kind << "]\n";
    os << "  at cycle " << cycle << ", retired instruction "
       << retire_index << ", pc " << hexAddr(pc) << "\n";
    if (const linker::Slot *slot = core_.image()->decode(pc))
        os << "  inst: " << slot->inst.toString(pc) << "\n";
    os << "  " << detail << "\n";
    os << "  timing pc " << hexAddr(core_.state().pc) << ", ref pc "
       << hexAddr(ref_.state().pc) << "\n";
    if (const auto *unit = core_.skipUnit())
        os << unit->dumpState();
    else
        os << "(skip unit disabled)\n";
    throw LockstepError(os.str());
}

void
LockstepChecker::compareRegs(const cpu::MachineState &timing,
                             std::uint64_t cycle,
                             std::uint64_t retire_index,
                             isa::Addr pc)
{
    const auto &rr = ref_.state().regs;
    for (int r = 0; r < isa::NumRegs; ++r) {
        if (rr[r] == timing.regs[r])
            continue;
        std::ostringstream os;
        os << "register r" << r << ": ref "
           << hexAddr(rr[r]) << ", timing "
           << hexAddr(timing.regs[r]);
        diverge("register", os.str(), cycle, retire_index, pc);
    }
}

void
LockstepChecker::onBeginCall(const cpu::MachineState &state,
                             isa::Addr ret_slot_addr,
                             std::uint64_t ret_value)
{
    // beginCall pokes the magic return address outside the data
    // path; mirror both the poke and the register setup. This does
    // not mask drift: any earlier divergence was already reported
    // at its own retire.
    ref_.state() = state;
    ref_.memory().poke64(ret_slot_addr, ret_value);
}

void
LockstepChecker::onRetire(const cpu::RetireRecord &rec)
{
    ++stats_.checkedRetires;

    if (ref_.state().pc != rec.pc) {
        diverge("pc",
                "timing retired at " + hexAddr(rec.pc) +
                    " but reference is at " +
                    hexAddr(ref_.state().pc),
                rec.cycle, rec.retireIndex, rec.pc);
    }

    RefStep st;
    try {
        st = ref_.step();
    } catch (const RefExecError &e) {
        diverge("ref-fault", e.what(), rec.cycle, rec.retireIndex,
                rec.pc);
    }

    if (st.didStore != rec.didStore) {
        diverge("store-presence",
                std::string("reference ") +
                    (st.didStore ? "stored" : "did not store") +
                    " but timing core " +
                    (rec.didStore ? "stored" : "did not"),
                rec.cycle, rec.retireIndex, rec.pc);
    }
    if (st.didStore && (st.storeAddr != rec.storeAddr ||
                        st.storeValue != rec.storeValue)) {
        diverge("store",
                "ref [" + hexAddr(st.storeAddr) + "] = " +
                    hexAddr(st.storeValue) + ", timing [" +
                    hexAddr(rec.storeAddr) + "] = " +
                    hexAddr(rec.storeValue),
                rec.cycle, rec.retireIndex, rec.pc);
    }
    if (st.nextPc != rec.nextPc) {
        diverge("next-pc",
                "architectural target: ref " + hexAddr(st.nextPc) +
                    ", timing " + hexAddr(rec.nextPc),
                rec.cycle, rec.retireIndex, rec.pc);
    }

    if (rec.substituted) {
        walkSkippedTrampoline(rec);
        ++stats_.verifiedSubstitutions;
    }

    compareRegs(*rec.state, rec.cycle, rec.retireIndex, rec.pc);

    if (ref_.state().halted != rec.state->halted) {
        diverge("halt",
                std::string("ref halted=") +
                    (ref_.state().halted ? "1" : "0") +
                    ", timing halted=" +
                    (rec.state->halted ? "1" : "0"),
                rec.cycle, rec.retireIndex, rec.pc);
    }
}

void
LockstepChecker::walkSkippedTrampoline(const cpu::RetireRecord &rec)
{
    // The timing core jumped straight to rec.effectivePc; the
    // reference must reach it by executing the elided PLT
    // instructions — and nothing else. A stale ABTB entry shows up
    // here: the walk loads the *current* GOT value, so it lands
    // somewhere other than the memoized target (or traps to the
    // resolver) and the checker reports it.
    auto &rs = ref_.state();
    const std::array<std::uint64_t, isa::NumRegs> before = rs.regs;

    int steps = 0;
    while (rs.pc != rec.effectivePc) {
        if (++steps > MaxWalkSteps) {
            diverge("skip-walk",
                    "substituted target " +
                        hexAddr(rec.effectivePc) +
                        " (trampoline " +
                        hexAddr(rec.subTrampoline) +
                        ", GOT slot " + hexAddr(rec.subGotAddr) +
                        ") not reached within " +
                        std::to_string(MaxWalkSteps) + " steps",
                    rec.cycle, rec.retireIndex, rec.pc);
        }
        if (rs.pc == linker::ResolverVa) {
            diverge("skip-target",
                    "substitution to " + hexAddr(rec.effectivePc) +
                        " but the architectural path traps to the "
                        "resolver — stale ABTB entry for "
                        "trampoline " + hexAddr(rec.subTrampoline) +
                        " (GOT slot " + hexAddr(rec.subGotAddr) +
                        " was rewritten without a flush?)",
                    rec.cycle, rec.retireIndex, rec.pc);
        }
        const linker::Slot *slot = core_.image()->decode(rs.pc);
        if (!slot || !(slot->flags & linker::FlagPlt)) {
            diverge("skip-target",
                    "walk from trampoline " +
                        hexAddr(rec.subTrampoline) +
                        " left PLT code at " + hexAddr(rs.pc) +
                        " without reaching substituted target " +
                        hexAddr(rec.effectivePc),
                    rec.cycle, rec.retireIndex, rec.pc);
        }
        RefStep st;
        try {
            st = ref_.step();
        } catch (const RefExecError &e) {
            diverge("ref-fault", e.what(), rec.cycle,
                    rec.retireIndex, rec.pc);
        }
        ++stats_.walkedInstructions;
        if (st.didStore) {
            diverge("skip-walk",
                    "elided PLT instruction at " + hexAddr(st.pc) +
                        " performed a store — a trampoline with "
                        "side effects must not be skipped",
                    rec.cycle, rec.retireIndex, rec.pc);
        }
    }

    // Registers written by the elided instructions (the ARM
    // scratch-register prologue) are ABI call-clobbered: the
    // skipped machine legitimately leaves them unwritten. Adopt the
    // timing core's values so later reads stay in lockstep.
    for (int r = 0; r < isa::NumRegs; ++r) {
        if (rs.regs[r] != before[r])
            rs.regs[r] = rec.state->regs[r];
    }
}

void
LockstepChecker::onResolver(const cpu::ResolverRecord &rec)
{
    ++stats_.resolverReplays;
    auto &rs = ref_.state();

    if (rs.pc != linker::ResolverVa) {
        diverge("resolver",
                "timing core serviced the resolver but reference "
                "is at " + hexAddr(rs.pc),
                rec.cycle, rec.retireIndex, linker::ResolverVa);
    }

    // Replay the trap architecturally: pop the module id and
    // relocation index the PLT pushed, compare operands, perform
    // the same GOT store, branch to the resolved target.
    mem::MemFault fault = mem::MemFault::None;
    const auto module_id =
        ref_.memory().read64(rs.regs[isa::RegSp], fault);
    rs.regs[isa::RegSp] += 8;
    const auto reloc_idx =
        ref_.memory().read64(rs.regs[isa::RegSp], fault);
    rs.regs[isa::RegSp] += 8;
    if (fault != mem::MemFault::None) {
        diverge("resolver", "reference stack unreadable at trap",
                rec.cycle, rec.retireIndex, linker::ResolverVa);
    }
    if (module_id != rec.moduleId || reloc_idx != rec.relocIdx) {
        diverge("resolver",
                "trap operands: ref (module " +
                    std::to_string(module_id) + ", reloc " +
                    std::to_string(reloc_idx) + "), timing (" +
                    std::to_string(rec.moduleId) + ", " +
                    std::to_string(rec.relocIdx) + ")",
                rec.cycle, rec.retireIndex, linker::ResolverVa);
    }
    if (ref_.memory().write64(rec.gotAddr, rec.value) !=
        mem::MemFault::None) {
        diverge("resolver",
                "reference GOT slot " + hexAddr(rec.gotAddr) +
                    " unwritable",
                rec.cycle, rec.retireIndex, linker::ResolverVa);
    }
    rs.pc = rec.target;

    compareRegs(*rec.state, rec.cycle, rec.retireIndex,
                linker::ResolverVa);
}

void
LockstepChecker::onExternalWrite(isa::Addr addr)
{
    ++stats_.externalWrites;
    // The new value is already visible in the shared/process
    // address space; mirror it into reference memory.
    ref_.memory().poke64(addr,
                         core_.image()->addressSpace().peek64(addr));
}

} // namespace dlsim::check
