/**
 * @file
 * RefCore: a minimal in-order *functional* reference core.
 *
 * Executes the same `isa::` instruction stream as the timing
 * `cpu::Core` but models architecturally visible state only —
 * registers, memory, control flow. No caches, no predictor, no
 * skip unit, no cycle accounting. Its memory is a copy-on-write
 * fork of the process image's address space, so the reference and
 * the timing core start byte-identical and pay pages only where
 * execution actually writes.
 *
 * The LockstepChecker steps a RefCore once per timing-core retire
 * and compares the two machines; any divergence is, by
 * construction, a violation of the mechanism's "architecturally
 * identical to the unmodified system" contract (paper §3).
 */

#ifndef DLSIM_CHECK_REF_CORE_HH
#define DLSIM_CHECK_REF_CORE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "cpu/core.hh"
#include "linker/image.hh"
#include "mem/address_space.hh"

namespace dlsim::check
{

using isa::Addr;

/** Faults during reference execution (bad memory, undecodable pc).
 *  In a lockstep run these are themselves divergences: the timing
 *  core executed the same instruction without faulting. */
class RefExecError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** What one reference step did (for comparison at retire). */
struct RefStep
{
    Addr pc = 0;
    isa::Opcode op = isa::Opcode::Nop;
    /** Pc after the step (architectural next). */
    Addr nextPc = 0;
    /** Control transfer redirected away from fall-through. */
    bool taken = false;
    bool didStore = false;
    Addr storeAddr = 0;
    std::uint64_t storeValue = 0;
};

/** The functional reference executor. */
class RefCore
{
  public:
    /** @param image Decode source (shared with the timing core —
     *        patches and dlopen/dlclose stay visible). */
    explicit RefCore(const linker::Image *image);

    /**
     * Adopt `state` and re-fork reference memory from the image's
     * current address space. Call when the two machines are known
     * architecturally identical: at attach, and after a snapshot
     * restore.
     */
    void sync(const cpu::MachineState &state);

    cpu::MachineState &state() { return state_; }
    const cpu::MachineState &state() const { return state_; }

    /** Reference memory (the checker mirrors external writes and
     *  resolver stores into it). */
    mem::AddressSpace &memory() { return *mem_; }

    /**
     * Execute exactly one instruction at state().pc. Never services
     * the resolver trap — the checker replays resolver effects from
     * the timing core's ResolverRecord instead. Throws RefExecError
     * on a memory fault, an undecodable pc, or pc == ResolverVa.
     */
    RefStep step();

  private:
    std::uint64_t read64(Addr addr);
    void write64(Addr addr, std::uint64_t value);

    const linker::Image *image_;
    std::unique_ptr<mem::AddressSpace> mem_;
    cpu::MachineState state_;
};

} // namespace dlsim::check

#endif // DLSIM_CHECK_REF_CORE_HH
