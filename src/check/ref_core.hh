/**
 * @file
 * RefCore: a minimal in-order *functional* reference core.
 *
 * Executes the same `isa::` instruction stream as the timing
 * `cpu::Core` but models architecturally visible state only —
 * registers, memory, control flow. No caches, no predictor, no
 * skip unit, no cycle accounting. Its memory is a copy-on-write
 * fork of the process image's address space, so the reference and
 * the timing core start byte-identical and pay pages only where
 * execution actually writes.
 *
 * The LockstepChecker steps a RefCore once per timing-core retire
 * and compares the two machines; any divergence is, by
 * construction, a violation of the mechanism's "architecturally
 * identical to the unmodified system" contract (paper §3).
 *
 * A RefCore can alternatively be bound *directly* to an address
 * space instead of forking one. sim::SampledExecution uses this to
 * fast-forward the live machine between detailed-timing sample
 * windows: functional stores land in the real process image, so
 * when the timing core resumes, architectural state is exactly what
 * exact-mode execution would have produced.
 */

#ifndef DLSIM_CHECK_REF_CORE_HH
#define DLSIM_CHECK_REF_CORE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "cpu/core.hh"
#include "linker/image.hh"
#include "mem/address_space.hh"

namespace dlsim::check
{

using isa::Addr;

/** Faults during reference execution (bad memory, undecodable pc).
 *  In a lockstep run these are themselves divergences: the timing
 *  core executed the same instruction without faulting. */
class RefExecError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** What one reference step did (for comparison at retire). */
struct RefStep
{
    Addr pc = 0;
    isa::Opcode op = isa::Opcode::Nop;
    /** Pc after the step (architectural next). */
    Addr nextPc = 0;
    /** Control transfer redirected away from fall-through. */
    bool taken = false;
    bool didStore = false;
    Addr storeAddr = 0;
    std::uint64_t storeValue = 0;
};

/** Why a runFast() batch stopped. */
enum class FastStop
{
    Budget,   ///< max_steps executed.
    Resolver, ///< pc reached the lazy-resolver trap.
    StopPc,   ///< pc reached the caller's stop address.
    Halted,   ///< the machine executed Halt.
};

/** The functional reference executor. */
class RefCore
{
  public:
    /** @param image Decode source (shared with the timing core —
     *        patches and dlopen/dlclose stay visible). */
    explicit RefCore(const linker::Image *image);

    /**
     * Direct-memory mode: execute against `direct` (typically the
     * image's own address space) instead of a private fork. Stores
     * are architecturally real — this is the fast-forward engine,
     * not a checker. sync() then only adopts register state.
     */
    RefCore(const linker::Image *image, mem::AddressSpace *direct);

    /**
     * Adopt `state` and (fork mode only) re-fork reference memory
     * from the image's current address space. Call when the two
     * machines are known architecturally identical: at attach,
     * after a snapshot restore, and after a fast-forward phase.
     */
    void sync(const cpu::MachineState &state);

    cpu::MachineState &state() { return state_; }
    const cpu::MachineState &state() const { return state_; }

    /** Reference memory: the private fork, or the directly bound
     *  space. (The checker mirrors external writes and resolver
     *  stores into its fork.) */
    mem::AddressSpace &memory() { return space(); }

    /**
     * Execute exactly one instruction at state().pc. Never services
     * the resolver trap — the checker replays resolver effects from
     * the timing core's ResolverRecord instead. Throws RefExecError
     * on a memory fault, an undecodable pc, or pc == ResolverVa.
     */
    RefStep step();

    /** Result of one runFast() batch. */
    struct FastRun
    {
        std::uint64_t steps = 0;
        FastStop stop = FastStop::Budget;
    };

    /**
     * Execute up to `max_steps` instructions functionally, as fast
     * as the interpreter can go (slot-chained decode, no per-step
     * event records). Stops *before* executing anything at
     * `stop_pc` or the resolver trap — the caller services the trap
     * (or ends the run) and calls again. Throws RefExecError on a
     * memory fault or undecodable pc.
     */
    FastRun runFast(std::uint64_t max_steps, Addr stop_pc);

    /**
     * Select the fast-forward engine: block-chained (default) or
     * per-instruction. The two produce identical step counts, stop
     * classifications, and architectural state; sim::Sampled-
     * Execution ties this to the timing core's blockDispatch so one
     * knob flips both executors.
     */
    void setBlockDispatch(bool on) { blocks_ = on; }

  private:
    mem::AddressSpace &space() { return direct_ ? *direct_ : *mem_; }
    /** Execute `slot` at state().pc, filling `st` and advancing. */
    void exec(const linker::Slot &slot, RefStep &st);
    /**
     * exec() with the per-step record compiled out (Record=false)
     * and the program counter threaded through `pc` instead of
     * state_.pc: the fast-forward loop keeps pc in a register
     * across whole fall-through chains, so the loop-carried
     * dependency never round-trips through memory. Callers own the
     * state_.pc sync.
     * @return True when slot chaining must stop — a taken transfer
     *         or a halt.
     */
    template <bool Record>
    bool execT(const isa::Instruction &inst, RefStep *st, Addr &pc);

    /** runFast per-instruction engine (the original loop). */
    FastRun runFastInstr(std::uint64_t max_steps, Addr stop_pc);
    /**
     * runFast block engine: dispatch whole blocks from the image's
     * block cache and chain static control edges (direct jumps and
     * calls, both CondBr arms, block fall-through) through
     * successor indices memoized on first traversal. Indirect
     * transfers return to the sentinel-checked outer loop, exactly
     * where runFastInstr re-enters its own.
     */
    FastRun runFastBlocks(std::uint64_t max_steps, Addr stop_pc);

    std::uint64_t read64(Addr addr);
    void write64(Addr addr, std::uint64_t value);

    const linker::Image *image_;
    std::unique_ptr<mem::AddressSpace> mem_;
    mem::AddressSpace *direct_ = nullptr;
    cpu::MachineState state_;
    bool blocks_ = true;
};

} // namespace dlsim::check

#endif // DLSIM_CHECK_REF_CORE_HH
