/**
 * @file
 * LockstepChecker: the architectural oracle for the trampoline-skip
 * mechanism.
 *
 * Attached to a timing cpu::Core via Core::setRetireObserver, it
 * replays every retired instruction on a functional RefCore and
 * compares pc, register writebacks, and store values instruction by
 * instruction. The paper's correctness contract (§3: the enhanced
 * machine "maintains an architectural state identical to the
 * unmodified system") becomes a machine-checked invariant:
 *
 *  - Every retire must find the reference at the same pc, produce
 *    the same store (address and value), resolve the same
 *    architectural next-pc, and leave identical registers.
 *  - When the core *skips* a trampoline (ABTB substitution), the
 *    checker walks the reference through the PLT instructions the
 *    timing core elided; the walk must reach the substituted target
 *    without leaving PLT code, without storing, and without
 *    trapping to the resolver — exactly the "trampoline is a pure
 *    branch" property the hardware relies on. Registers written
 *    during the walk (the ARM scratch-register prologue) are
 *    reconciled to the timing core's values, because the ABI makes
 *    them call-clobbered — the one architecturally sanctioned
 *    difference.
 *  - Resolver traps are replayed from the timing core's record:
 *    same popped module/relocation operands, same GOT store.
 *
 * The first divergence raises LockstepError with full context:
 * cycle, retired-instruction index, pc, disassembly, both machines'
 * views, and a dump of the ABTB/skip-unit state.
 */

#ifndef DLSIM_CHECK_LOCKSTEP_HH
#define DLSIM_CHECK_LOCKSTEP_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "check/ref_core.hh"
#include "cpu/core.hh"
#include "cpu/retire_observer.hh"

namespace dlsim::check
{

/** First divergence between the timing core and the reference. */
class LockstepError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Checker work counters. */
struct LockstepStats
{
    std::uint64_t checkedRetires = 0;
    std::uint64_t verifiedSubstitutions = 0;
    std::uint64_t resolverReplays = 0;
    std::uint64_t externalWrites = 0;
    /** Instructions executed inside substitution walks. */
    std::uint64_t walkedInstructions = 0;
    /** Resyncs at fast-forward/detail boundaries (sampled runs). */
    std::uint64_t fastForwardSyncs = 0;
};

/** The lockstep architectural oracle. */
class LockstepChecker : public cpu::RetireObserver
{
  public:
    /** Upper bound on a substitution walk (longest legal chain:
     *  ARM prologue + indirect jump + lazy tail, with slack). */
    static constexpr int MaxWalkSteps = 12;

    /**
     * Attach to `core`, forking reference memory from its image's
     * current address space. The core and the checker must be
     * architecturally in sync at this point (freshly built, or at
     * any quiescent point of a run). Call resync() after restoring
     * the core from a snapshot.
     */
    explicit LockstepChecker(cpu::Core &core);

    /** Re-adopt the core's state and re-fork reference memory. */
    void resync();

    const LockstepStats &stats() const { return stats_; }
    RefCore &ref() { return ref_; }

    /** @name RetireObserver @{ */
    void onBeginCall(const cpu::MachineState &state,
                     isa::Addr ret_slot_addr,
                     std::uint64_t ret_value) override;
    void onRetire(const cpu::RetireRecord &rec) override;
    void onResolver(const cpu::ResolverRecord &rec) override;
    void onExternalWrite(isa::Addr addr) override;

    /** Fast-forward handoff: the functional engine already applied
     *  every architectural effect to the real address space, so the
     *  checker resyncs exactly as after a snapshot restore. */
    void onFastForward(const cpu::MachineState &state) override
    {
        (void)state;
        resync();
        ++stats_.fastForwardSyncs;
    }
    /** @} */

  private:
    [[noreturn]] void diverge(const std::string &kind,
                              const std::string &detail,
                              std::uint64_t cycle,
                              std::uint64_t retire_index,
                              isa::Addr pc);
    void compareRegs(const cpu::MachineState &timing,
                     std::uint64_t cycle,
                     std::uint64_t retire_index, isa::Addr pc);
    void walkSkippedTrampoline(const cpu::RetireRecord &rec);

    cpu::Core &core_;
    RefCore ref_;
    LockstepStats stats_;
};

} // namespace dlsim::check

#endif // DLSIM_CHECK_LOCKSTEP_HH
