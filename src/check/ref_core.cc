#include "check/ref_core.hh"

#include <sstream>

namespace dlsim::check
{

namespace
{

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

bool
condTaken(isa::CondKind cond, std::uint64_t value)
{
    switch (cond) {
      case isa::CondKind::Eq0:
        return value == 0;
      case isa::CondKind::Ne0:
        return value != 0;
      case isa::CondKind::Lt0:
        return static_cast<std::int64_t>(value) < 0;
      case isa::CondKind::Ge0:
        return static_cast<std::int64_t>(value) >= 0;
    }
    return false;
}

std::uint64_t
aluEval(isa::AluKind kind, std::uint64_t a, std::uint64_t b)
{
    switch (kind) {
      case isa::AluKind::Add:
        return a + b;
      case isa::AluKind::Sub:
        return a - b;
      case isa::AluKind::And:
        return a & b;
      case isa::AluKind::Or:
        return a | b;
      case isa::AluKind::Xor:
        return a ^ b;
      case isa::AluKind::Mul:
        return a * b;
      case isa::AluKind::Shr:
        return a >> (b & 63);
    }
    return 0;
}

} // namespace

RefCore::RefCore(const linker::Image *image) : image_(image)
{
    mem_ = image_->addressSpace().fork();
}

RefCore::RefCore(const linker::Image *image,
                 mem::AddressSpace *direct)
    : image_(image), direct_(direct)
{
}

void
RefCore::sync(const cpu::MachineState &state)
{
    state_ = state;
    if (!direct_)
        mem_ = image_->addressSpace().fork();
}

std::uint64_t
RefCore::read64(Addr addr)
{
    mem::MemFault fault = mem::MemFault::None;
    const auto value = space().read64(addr, fault);
    if (fault != mem::MemFault::None) {
        throw RefExecError("reference load fault at " +
                           hexAddr(addr) + " (pc " +
                           hexAddr(state_.pc) + ")");
    }
    return value;
}

void
RefCore::write64(Addr addr, std::uint64_t value)
{
    const auto fault = space().write64(addr, value);
    if (fault != mem::MemFault::None) {
        throw RefExecError("reference store fault at " +
                           hexAddr(addr) + " (pc " +
                           hexAddr(state_.pc) + ")");
    }
}

RefStep
RefCore::step()
{
    if (state_.pc == linker::ResolverVa) {
        throw RefExecError(
            "reference core reached the resolver trap outside a "
            "resolver replay (stale skip into the lazy path?)");
    }

    const linker::Slot *slot = image_->decode(state_.pc);
    if (!slot) {
        throw RefExecError("reference: undecodable pc " +
                           hexAddr(state_.pc));
    }

    RefStep st;
    exec(*slot, st);
    return st;
}

RefCore::FastRun
RefCore::runFast(std::uint64_t max_steps, Addr stop_pc)
{
    return blocks_ ? runFastBlocks(max_steps, stop_pc)
                   : runFastInstr(max_steps, stop_pc);
}

RefCore::FastRun
RefCore::runFastInstr(std::uint64_t max_steps, Addr stop_pc)
{
    FastRun r;
    while (r.steps < max_steps) {
        // Chain-entry checks only: the stop sentinels (magic
        // return, resolver trap) are distinguished addresses
        // reachable solely via taken transfers, so fall-through
        // chaining never needs these tests. state_.pc is
        // authoritative here and re-synced at every chain end (a
        // RefExecError thrown mid-chain therefore reports the
        // chain-entry pc; the faulting address is exact).
        if (state_.halted) {
            r.stop = FastStop::Halted;
            return r;
        }
        Addr pc = state_.pc;
        if (pc == stop_pc) {
            r.stop = FastStop::StopPc;
            return r;
        }
        if (pc == linker::ResolverVa) {
            r.stop = FastStop::Resolver;
            return r;
        }
        const linker::Slot *cur = image_->decode(pc);
        if (!cur) {
            throw RefExecError("reference: undecodable pc " +
                               hexAddr(pc));
        }
        // Chain fall-through slots with pc held in a register;
        // transfers (and halt) break out to the entry checks.
        do {
            ++r.steps;
            if (execT<false>(cur->inst, nullptr, pc))
                break;
            cur = image_->nextSlot(cur);
            if (!cur) {
                state_.pc = pc;
                throw RefExecError(
                    "reference: undecodable pc " + hexAddr(pc));
            }
        } while (r.steps < max_steps);
        state_.pc = pc;
    }
    if (state_.halted)
        r.stop = FastStop::Halted;
    else if (state_.pc == stop_pc)
        r.stop = FastStop::StopPc;
    else if (state_.pc == linker::ResolverVa)
        r.stop = FastStop::Resolver;
    return r;
}

RefCore::FastRun
RefCore::runFastBlocks(std::uint64_t max_steps, Addr stop_pc)
{
    FastRun r;
    while (r.steps < max_steps) {
        // Chain-entry checks, as in runFastInstr: the sentinels are
        // reachable solely via taken transfers, so block chaining
        // re-tests them only when it follows a taken edge.
        if (state_.halted) {
            r.stop = FastStop::Halted;
            return r;
        }
        Addr pc = state_.pc;
        if (pc == stop_pc) {
            r.stop = FastStop::StopPc;
            return r;
        }
        if (pc == linker::ResolverVa) {
            r.stop = FastStop::Resolver;
            return r;
        }
        std::int32_t bi = image_->blockIndex(pc);
        if (bi < 0) {
            throw RefExecError("reference: undecodable pc " +
                               hexAddr(pc));
        }
        // Chain blocks with pc held in a register. Blocks are
        // copied by value and op pointers re-derived per iteration:
        // building a successor can reallocate the arena.
        while (true) {
            const linker::Image::Block b = image_->block(bi);
            const linker::Image::BlockOp *ops = image_->blockOps(b);
            const std::uint64_t remaining = max_steps - r.steps;
            const std::uint32_t body = b.bodyOps;
            if (remaining < body) {
                // Budget lapses mid-body: stop where the
                // per-instruction loop would.
                const auto n = static_cast<std::uint32_t>(remaining);
                for (std::uint32_t i = 0; i < n; ++i) {
                    ++r.steps;
                    execT<false>(ops[i].inst, nullptr, pc);
                }
                state_.pc = pc;
                break; // outer condition fails -> tail classifies
            }
            for (std::uint32_t i = 0; i < body; ++i) {
                ++r.steps;
                execT<false>(ops[i].inst, nullptr, pc);
            }
            if (!b.hasTerm) {
                // Capped block or decoded-code edge: mid-chain
                // fall-through, no sentinel checks (runFastInstr
                // would be mid-chain here too).
                state_.pc = pc;
                if (r.steps >= max_steps)
                    break;
                std::int32_t succ = b.succFall;
                if (succ < 0) {
                    succ = image_->blockIndex(pc);
                    if (succ < 0) {
                        throw RefExecError(
                            "reference: undecodable pc " +
                            hexAddr(pc));
                    }
                    image_->memoSuccFall(bi, succ);
                }
                bi = succ;
                continue;
            }
            if (remaining == body) {
                // Budget lapses right before the terminator.
                state_.pc = pc;
                break;
            }
            ++r.steps;
            const isa::Opcode term_op = ops[body].inst.op;
            const bool tk = execT<false>(ops[body].inst, nullptr, pc);
            state_.pc = pc;
            if (state_.halted)
                break; // outer loop / tail classifies Halted
            if (term_op == isa::Opcode::CondBr && !tk) {
                // Not-taken CondBr falls through mid-chain: budget
                // check only, like runFastInstr's inner loop.
                if (r.steps >= max_steps)
                    break;
                std::int32_t succ = b.succFall;
                if (succ < 0) {
                    succ = image_->blockIndex(pc);
                    if (succ < 0) {
                        throw RefExecError(
                            "reference: undecodable pc " +
                            hexAddr(pc));
                    }
                    image_->memoSuccFall(bi, succ);
                }
                bi = succ;
                continue;
            }
            if (term_op == isa::Opcode::JmpRel ||
                term_op == isa::Opcode::CallRel ||
                term_op == isa::Opcode::CondBr) {
                // Taken edge with a static target: re-run the
                // chain-entry checks inline, then follow the
                // memoized successor.
                if (r.steps >= max_steps || pc == stop_pc ||
                    pc == linker::ResolverVa) {
                    break; // outer loop / tail classifies
                }
                std::int32_t succ = b.succTaken;
                if (succ < 0) {
                    succ = image_->blockIndex(pc);
                    if (succ < 0) {
                        throw RefExecError(
                            "reference: undecodable pc " +
                            hexAddr(pc));
                    }
                    image_->memoSuccTaken(bi, succ);
                }
                bi = succ;
                continue;
            }
            // Indirect transfer (register/memory jump or call,
            // Ret): the target varies, so return to the outer loop
            // and look it up afresh.
            break;
        }
    }
    if (state_.halted)
        r.stop = FastStop::Halted;
    else if (state_.pc == stop_pc)
        r.stop = FastStop::StopPc;
    else if (state_.pc == linker::ResolverVa)
        r.stop = FastStop::Resolver;
    return r;
}

void
RefCore::exec(const linker::Slot &slot, RefStep &st)
{
    Addr pc = state_.pc;
    execT<true>(slot.inst, &st, pc);
    state_.pc = pc;
}

template <bool Record>
bool
RefCore::execT(const isa::Instruction &inst, RefStep *st, Addr &pc)
{
    const Addr fallthrough = pc + inst.size;
    auto &regs = state_.regs;
    Addr nextPc = fallthrough;
    bool taken = false;

    const auto effAddr = [&]() -> Addr {
        return inst.memBase == isa::NoReg
                   ? static_cast<Addr>(inst.imm)
                   : regs[inst.memBase] +
                         static_cast<Addr>(inst.imm);
    };
    const auto store = [&](Addr addr, std::uint64_t value) {
        if constexpr (Record) {
            st->storeAddr = addr;
            st->storeValue = value;
            st->didStore = true;
        }
        write64(addr, value);
    };

    if constexpr (Record) {
        st->pc = pc;
        st->op = inst.op;
    }

    switch (inst.op) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::IntAlu: {
        const std::uint64_t b = inst.src2 == isa::NoReg
                                    ? static_cast<std::uint64_t>(
                                          inst.imm)
                                    : regs[inst.src2];
        regs[inst.dst] = aluEval(inst.alu, regs[inst.src1], b);
        break;
      }
      case isa::Opcode::MovImm:
        regs[inst.dst] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Opcode::Load:
        regs[inst.dst] = read64(effAddr());
        break;
      case isa::Opcode::Store:
        store(effAddr(), regs[inst.src1]);
        break;
      case isa::Opcode::Push:
        regs[isa::RegSp] -= 8;
        store(regs[isa::RegSp], regs[inst.src1]);
        break;
      case isa::Opcode::PushImm:
        regs[isa::RegSp] -= 8;
        store(regs[isa::RegSp],
              static_cast<std::uint64_t>(inst.imm));
        break;
      case isa::Opcode::Pop:
        regs[inst.dst] = read64(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        break;
      case isa::Opcode::CallRel:
      case isa::Opcode::CallIndReg:
      case isa::Opcode::CallIndMem: {
        if (inst.op == isa::Opcode::CallRel) {
            nextPc = fallthrough + static_cast<Addr>(inst.imm);
        } else if (inst.op == isa::Opcode::CallIndReg) {
            nextPc = regs[inst.src1];
        } else {
            nextPc = read64(effAddr());
        }
        regs[isa::RegSp] -= 8;
        store(regs[isa::RegSp], fallthrough);
        taken = true;
        break;
      }
      case isa::Opcode::JmpRel:
        nextPc = fallthrough + static_cast<Addr>(inst.imm);
        taken = true;
        break;
      case isa::Opcode::JmpIndReg:
        nextPc = regs[inst.src1];
        taken = true;
        break;
      case isa::Opcode::JmpIndMem:
        nextPc = read64(effAddr());
        taken = true;
        break;
      case isa::Opcode::CondBr:
        if (condTaken(inst.cond, regs[inst.src1])) {
            nextPc = fallthrough + static_cast<Addr>(inst.imm);
            taken = true;
        }
        break;
      case isa::Opcode::Ret:
        nextPc = read64(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        taken = true;
        break;
      case isa::Opcode::Halt:
        state_.halted = true;
        break;
      case isa::Opcode::AbtbFlush:
        // Architecturally a nop: the flush touches no visible state.
        break;
    }

    if constexpr (Record) {
        st->nextPc = nextPc;
        st->taken = taken;
    }
    pc = nextPc;
    return taken || state_.halted;
}

} // namespace dlsim::check
