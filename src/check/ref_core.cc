#include "check/ref_core.hh"

#include <sstream>

namespace dlsim::check
{

namespace
{

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

bool
condTaken(isa::CondKind cond, std::uint64_t value)
{
    switch (cond) {
      case isa::CondKind::Eq0:
        return value == 0;
      case isa::CondKind::Ne0:
        return value != 0;
      case isa::CondKind::Lt0:
        return static_cast<std::int64_t>(value) < 0;
      case isa::CondKind::Ge0:
        return static_cast<std::int64_t>(value) >= 0;
    }
    return false;
}

std::uint64_t
aluEval(isa::AluKind kind, std::uint64_t a, std::uint64_t b)
{
    switch (kind) {
      case isa::AluKind::Add:
        return a + b;
      case isa::AluKind::Sub:
        return a - b;
      case isa::AluKind::And:
        return a & b;
      case isa::AluKind::Or:
        return a | b;
      case isa::AluKind::Xor:
        return a ^ b;
      case isa::AluKind::Mul:
        return a * b;
      case isa::AluKind::Shr:
        return a >> (b & 63);
    }
    return 0;
}

} // namespace

RefCore::RefCore(const linker::Image *image) : image_(image)
{
    mem_ = image_->addressSpace().fork();
}

void
RefCore::sync(const cpu::MachineState &state)
{
    state_ = state;
    mem_ = image_->addressSpace().fork();
}

std::uint64_t
RefCore::read64(Addr addr)
{
    mem::MemFault fault = mem::MemFault::None;
    const auto value = mem_->read64(addr, fault);
    if (fault != mem::MemFault::None) {
        throw RefExecError("reference load fault at " +
                           hexAddr(addr) + " (pc " +
                           hexAddr(state_.pc) + ")");
    }
    return value;
}

void
RefCore::write64(Addr addr, std::uint64_t value)
{
    const auto fault = mem_->write64(addr, value);
    if (fault != mem::MemFault::None) {
        throw RefExecError("reference store fault at " +
                           hexAddr(addr) + " (pc " +
                           hexAddr(state_.pc) + ")");
    }
}

RefStep
RefCore::step()
{
    if (state_.pc == linker::ResolverVa) {
        throw RefExecError(
            "reference core reached the resolver trap outside a "
            "resolver replay (stale skip into the lazy path?)");
    }

    const linker::Slot *slot = image_->decode(state_.pc);
    if (!slot) {
        throw RefExecError("reference: undecodable pc " +
                           hexAddr(state_.pc));
    }

    const isa::Instruction &inst = slot->inst;
    const Addr pc = state_.pc;
    const Addr fallthrough = pc + inst.size;
    auto &regs = state_.regs;

    const auto effAddr = [&]() -> Addr {
        return inst.memBase == isa::NoReg
                   ? static_cast<Addr>(inst.imm)
                   : regs[inst.memBase] +
                         static_cast<Addr>(inst.imm);
    };

    RefStep st;
    st.pc = pc;
    st.op = inst.op;
    st.nextPc = fallthrough;

    switch (inst.op) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::IntAlu: {
        const std::uint64_t b = inst.src2 == isa::NoReg
                                    ? static_cast<std::uint64_t>(
                                          inst.imm)
                                    : regs[inst.src2];
        regs[inst.dst] = aluEval(inst.alu, regs[inst.src1], b);
        break;
      }
      case isa::Opcode::MovImm:
        regs[inst.dst] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Opcode::Load:
        regs[inst.dst] = read64(effAddr());
        break;
      case isa::Opcode::Store:
        st.storeAddr = effAddr();
        st.storeValue = regs[inst.src1];
        write64(st.storeAddr, st.storeValue);
        st.didStore = true;
        break;
      case isa::Opcode::Push:
        regs[isa::RegSp] -= 8;
        st.storeAddr = regs[isa::RegSp];
        st.storeValue = regs[inst.src1];
        write64(st.storeAddr, st.storeValue);
        st.didStore = true;
        break;
      case isa::Opcode::PushImm:
        regs[isa::RegSp] -= 8;
        st.storeAddr = regs[isa::RegSp];
        st.storeValue = static_cast<std::uint64_t>(inst.imm);
        write64(st.storeAddr, st.storeValue);
        st.didStore = true;
        break;
      case isa::Opcode::Pop:
        regs[inst.dst] = read64(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        break;
      case isa::Opcode::CallRel:
      case isa::Opcode::CallIndReg:
      case isa::Opcode::CallIndMem: {
        if (inst.op == isa::Opcode::CallRel) {
            st.nextPc = fallthrough + static_cast<Addr>(inst.imm);
        } else if (inst.op == isa::Opcode::CallIndReg) {
            st.nextPc = regs[inst.src1];
        } else {
            st.nextPc = read64(effAddr());
        }
        regs[isa::RegSp] -= 8;
        st.storeAddr = regs[isa::RegSp];
        st.storeValue = fallthrough;
        write64(st.storeAddr, st.storeValue);
        st.didStore = true;
        st.taken = true;
        break;
      }
      case isa::Opcode::JmpRel:
        st.nextPc = fallthrough + static_cast<Addr>(inst.imm);
        st.taken = true;
        break;
      case isa::Opcode::JmpIndReg:
        st.nextPc = regs[inst.src1];
        st.taken = true;
        break;
      case isa::Opcode::JmpIndMem:
        st.nextPc = read64(effAddr());
        st.taken = true;
        break;
      case isa::Opcode::CondBr:
        if (condTaken(inst.cond, regs[inst.src1])) {
            st.nextPc = fallthrough + static_cast<Addr>(inst.imm);
            st.taken = true;
        }
        break;
      case isa::Opcode::Ret:
        st.nextPc = read64(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        st.taken = true;
        break;
      case isa::Opcode::Halt:
        state_.halted = true;
        break;
      case isa::Opcode::AbtbFlush:
        // Architecturally a nop: the flush touches no visible state.
        break;
    }

    state_.pc = st.nextPc;
    return st;
}

} // namespace dlsim::check
