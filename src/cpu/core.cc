#include "cpu/core.hh"

#include <sstream>

#include <algorithm>
#include <vector>

#include "snapshot/serializer.hh"

namespace dlsim::cpu
{

namespace
{

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

Core::Core(const CoreParams &params)
    : params_(params), hierarchy_(params.mem),
      predictor_(params.predictor)
{
    if (params_.skipUnitEnabled) {
        skipUnit_ =
            std::make_unique<core::TrampolineSkipUnit>(params_.skip);
    }
    if (!params_.tracePath.empty()) {
        traceWriter_ =
            std::make_unique<trace::TraceWriter>(params_.tracePath);
    }
}

void
Core::attachProcess(linker::Image *image,
                    linker::DynamicLinker *linker, std::uint16_t asid)
{
    image_ = image;
    linker_ = linker;
    asid_ = asid;
    curSlot_ = nullptr;
    if (skipUnit_)
        skipUnit_->setAsid(asid);
}

void
Core::contextSwitch(linker::Image *image,
                    linker::DynamicLinker *linker, std::uint16_t asid)
{
    if (!params_.asidTlbRetention)
        hierarchy_.flushTlbs();
    predictor_.contextSwitch();
    if (skipUnit_)
        skipUnit_->contextSwitch();
    attachProcess(image, linker, asid);
}

void
Core::setState(const MachineState &state)
{
    state_ = state;
    curSlot_ = nullptr;
}

void
Core::initStack(Addr stack_top)
{
    state_.regs[isa::RegSp] = stack_top - 64;
}

std::uint64_t
Core::readData(Addr addr)
{
    ++cnt_.loads;
    cnt_.cycles += hierarchy_.data(addr, asid_).extraCycles;
    mem::MemFault fault = mem::MemFault::None;
    const auto value = image_->addressSpace().read64(addr, fault);
    if (fault != mem::MemFault::None) {
        throw SimError("load fault at " + hexAddr(addr) + " (pc " +
                       hexAddr(state_.pc) + ")");
    }
    return value;
}

void
Core::writeData(Addr addr, std::uint64_t value)
{
    ++cnt_.stores;
    cnt_.cycles += hierarchy_.data(addr, asid_).extraCycles;
    const auto fault = image_->addressSpace().write64(addr, value);
    if (fault != mem::MemFault::None) {
        throw SimError("store fault at " + hexAddr(addr) + " (pc " +
                       hexAddr(state_.pc) + ")");
    }
    if (storeSnoopHook_)
        storeSnoopHook_(addr);
}

bool
Core::condTaken(isa::CondKind cond, std::uint64_t value)
{
    switch (cond) {
      case isa::CondKind::Eq0:
        return value == 0;
      case isa::CondKind::Ne0:
        return value != 0;
      case isa::CondKind::Lt0:
        return static_cast<std::int64_t>(value) < 0;
      case isa::CondKind::Ge0:
        return static_cast<std::int64_t>(value) >= 0;
    }
    return false;
}

std::uint64_t
Core::aluEval(isa::AluKind kind, std::uint64_t a, std::uint64_t b)
{
    switch (kind) {
      case isa::AluKind::Add:
        return a + b;
      case isa::AluKind::Sub:
        return a - b;
      case isa::AluKind::And:
        return a & b;
      case isa::AluKind::Or:
        return a | b;
      case isa::AluKind::Xor:
        return a ^ b;
      case isa::AluKind::Mul:
        return a * b;
      case isa::AluKind::Shr:
        return a >> (b & 63);
    }
    return 0;
}

void
Core::serviceResolver()
{
    auto &regs = state_.regs;

    // Stack on entry: [sp]=module id (PLT0), [sp+8]=relocation
    // index (PLT entry), [sp+16]=original return address.
    const auto module_id =
        static_cast<std::uint32_t>(readData(regs[isa::RegSp]));
    regs[isa::RegSp] += 8;
    const auto reloc_idx =
        static_cast<std::uint32_t>(readData(regs[isa::RegSp]));
    regs[isa::RegSp] += 8;

    const auto result = linker_->resolve(module_id, reloc_idx);

    // The GOT update is an architectural store: the D-cache sees it
    // and — crucially — the bloom filter snoops it, flushing the
    // ABTB exactly once per symbol, at startup (§3.2).
    writeData(result.gotAddr, result.value);
    if (traceWriter_) {
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::Store;
        ev.pc = linker::ResolverVa;
        ev.addr = result.gotAddr;
        traceWriter_->append(ev);
    }
    if (skipUnit_) {
        skipUnit_->retireStore(result.gotAddr);
        // §3.4 alternate implementation: no bloom filter, so the
        // (modified) dynamic linker executes the architecturally
        // visible flush after every GOT update.
        if (params_.skip.explicitInvalidation)
            skipUnit_->explicitFlush();
    }

    // Synthetic cost of the symbol hash lookup in ld.so.
    cnt_.instructions += params_.resolverInsts;
    cnt_.cycles += params_.resolverCycles;
    ++cnt_.resolverCalls;

    state_.pc = result.target;
    curSlot_ = nullptr;

    if (observer_) {
        ResolverRecord rec;
        rec.moduleId = module_id;
        rec.relocIdx = reloc_idx;
        rec.gotAddr = result.gotAddr;
        rec.value = result.value;
        rec.target = result.target;
        rec.cycle = cnt_.cycles;
        rec.retireIndex = cnt_.instructions;
        rec.state = &state_;
        observer_->onResolver(rec);
    }
}

template <bool Observed>
void
Core::stepT()
{
    if (state_.pc == linker::ResolverVa) {
        serviceResolver();
        return;
    }

    if (!curSlot_ || curSlot_->va != state_.pc)
        curSlot_ = image_->decode(state_.pc);
    if (!curSlot_)
        throw SimError("undecodable pc " + hexAddr(state_.pc));

    const linker::Slot &slot = *curSlot_;
    const isa::Instruction &inst = slot.inst;
    const Addr pc = state_.pc;
    const Addr fallthrough = pc + inst.size;

    // Fetch. Base throughput is issueWidth instructions per
    // cycle; miss penalties serialise on top.
    cnt_.cycles += hierarchy_.fetch(pc, asid_).extraCycles;
    if (++cnt_.issueSlot >= params_.issueWidth) {
        ++cnt_.cycles;
        cnt_.issueSlot = 0;
    }
    ++cnt_.instructions;
    if (slot.flags & linker::FlagPlt) {
        ++cnt_.trampolineInsts;
        if (slot.flags & linker::FlagPltJmp) {
            ++cnt_.trampolineJmps;
            if (params_.profileTrampolines)
                ++trampolineCounts_[pc];
        }
    }

    const bool is_ctl = isa::isControl(inst.op);
    Addr predicted = fallthrough;
    if (is_ctl)
        predicted = predictor_.predictNext(inst, pc);

    auto &regs = state_.regs;
    const auto effAddr = [&]() -> Addr {
        return inst.memBase == isa::NoReg
                   ? static_cast<Addr>(inst.imm)
                   : regs[inst.memBase] +
                         static_cast<Addr>(inst.imm);
    };

    Addr next = fallthrough;
    bool redirected = false;
    Addr load_src = 0;
    bool did_store = false;
    Addr store_addr = 0;
    std::uint64_t store_value = 0;

    switch (inst.op) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::IntAlu: {
        const std::uint64_t b = inst.src2 == isa::NoReg
                                    ? static_cast<std::uint64_t>(
                                          inst.imm)
                                    : regs[inst.src2];
        regs[inst.dst] = aluEval(inst.alu, regs[inst.src1], b);
        break;
      }
      case isa::Opcode::MovImm:
        regs[inst.dst] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Opcode::Load:
        regs[inst.dst] = readData(effAddr());
        break;
      case isa::Opcode::Store: {
        store_addr = effAddr();
        store_value = regs[inst.src1];
        writeData(store_addr, store_value);
        did_store = true;
        break;
      }
      case isa::Opcode::Push:
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = regs[inst.src1];
        writeData(store_addr, store_value);
        did_store = true;
        break;
      case isa::Opcode::PushImm:
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = static_cast<std::uint64_t>(inst.imm);
        writeData(store_addr, store_value);
        did_store = true;
        break;
      case isa::Opcode::Pop:
        regs[inst.dst] = readData(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        break;
      case isa::Opcode::CallRel:
      case isa::Opcode::CallIndReg:
      case isa::Opcode::CallIndMem: {
        if (inst.op == isa::Opcode::CallRel) {
            next = fallthrough + static_cast<Addr>(inst.imm);
        } else if (inst.op == isa::Opcode::CallIndReg) {
            next = regs[inst.src1];
        } else {
            load_src = effAddr();
            next = readData(load_src);
        }
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = fallthrough;
        writeData(store_addr, store_value);
        did_store = true;
        redirected = true;
        break;
      }
      case isa::Opcode::JmpRel:
        next = fallthrough + static_cast<Addr>(inst.imm);
        redirected = true;
        break;
      case isa::Opcode::JmpIndReg:
        next = regs[inst.src1];
        redirected = true;
        break;
      case isa::Opcode::JmpIndMem:
        load_src = effAddr();
        next = readData(load_src);
        redirected = true;
        break;
      case isa::Opcode::CondBr: {
        ++cnt_.condBranches;
        if (condTaken(inst.cond, regs[inst.src1])) {
            next = fallthrough + static_cast<Addr>(inst.imm);
            redirected = true;
        }
        break;
      }
      case isa::Opcode::Ret:
        next = readData(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        redirected = true;
        break;
      case isa::Opcode::Halt:
        state_.halted = true;
        break;
      case isa::Opcode::AbtbFlush:
        if (skipUnit_)
            skipUnit_->explicitFlush();
        break;
    }

    // Branch resolution, with the ABTB consulted on the
    // architecturally resolved target (§3.2 back end).
    Addr effective = next;
    bool substituted = false;
    core::AbtbEntry sub_entry;
    if (is_ctl) {
        if (skipUnit_ && redirected) {
            if (const auto entry =
                    skipUnit_->substituteTarget(next)) {
                if (params_.checkSkips) {
                    const auto got_value =
                        image_->addressSpace().peek64(
                            entry->gotAddr);
                    if (got_value != entry->function) {
                        throw SimError(
                            "ABTB checker: stale entry for "
                            "trampoline " +
                            hexAddr(entry->trampoline));
                    }
                }
                effective = entry->function;
                substituted = true;
                sub_entry = *entry;
                ++cnt_.skippedTrampolines;
            }
        }
        ++cnt_.branches;
        if (predicted != effective) {
            ++cnt_.mispredicts;
            cnt_.cycles += params_.mispredictPenalty;
            if (inst.op == isa::Opcode::CondBr)
                ++cnt_.condMispredicts;
        }
        predictor_.resolve(inst, pc, redirected, effective);
    }

    // Retire hooks, in program order: the store side of a call
    // retires before its control side arms the pattern detector.
    if (skipUnit_) {
        if (did_store)
            skipUnit_->retireStore(store_addr);
        if (is_ctl)
            skipUnit_->retireControl(inst.op, next, load_src);
        else if (!did_store)
            skipUnit_->retireOther();
    }

    // Retire-stream tracing (the Pin-collection analogue); same
    // store-before-control ordering as the live hooks.
    if (traceWriter_) {
        if (did_store) {
            trace::TraceEvent ev;
            ev.kind = trace::EventKind::Store;
            ev.pc = pc;
            ev.addr = store_addr;
            traceWriter_->append(ev);
        }
        trace::TraceEvent ev;
        if (is_ctl) {
            ev.kind = trace::EventKind::Control;
            ev.op = inst.op;
            ev.flags = slot.flags;
            ev.taken = redirected ? 1 : 0;
            ev.pc = pc;
            ev.addr = next;
            ev.loadSrc = load_src;
        } else {
            ev.kind = trace::EventKind::Other;
            ev.op = inst.op;
            ev.pc = pc;
        }
        traceWriter_->append(ev);
    }

    // Call-site profiler (Pin-tool stand-in): record each PLT
    // trampoline's entering instruction and resolved target.
    if (params_.collectCallSiteTrace && is_ctl) {
        if ((slot.flags & linker::FlagPltJmp) && hasLastCtl_) {
            const linker::Slot *target_slot = image_->decode(next);
            const bool still_lazy =
                next == linker::ResolverVa ||
                (target_slot &&
                 (target_slot->flags & linker::FlagPlt));
            if (!still_lazy &&
                tracedSites_.insert(lastCtlVa_).second) {
                trace_.push_back({lastCtlVa_, pc, next,
                                  !lastCtlWasCall_});
            }
        }
        hasLastCtl_ = true;
        lastCtlVa_ = pc;
        lastCtlWasCall_ = isa::isCall(inst.op);
    }

    // Advance.
    if (is_ctl && (redirected || effective != fallthrough)) {
        // Taken transfer: the fetch group ends here.
        if (cnt_.issueSlot != 0) {
            ++cnt_.cycles;
            cnt_.issueSlot = 0;
        }
        state_.pc = effective;
        curSlot_ = nullptr;
    } else {
        state_.pc = fallthrough;
        curSlot_ = image_->nextSlot(curSlot_);
    }

    if constexpr (Observed) {
        RetireRecord rec;
        rec.pc = pc;
        rec.op = inst.op;
        rec.isControl = is_ctl;
        rec.taken = redirected;
        rec.nextPc = is_ctl ? next : fallthrough;
        rec.effectivePc = is_ctl ? effective : fallthrough;
        rec.substituted = substituted;
        if (substituted) {
            rec.subTrampoline = sub_entry.trampoline;
            rec.subFunction = sub_entry.function;
            rec.subGotAddr = sub_entry.gotAddr;
        }
        rec.didStore = did_store;
        rec.storeAddr = store_addr;
        rec.storeValue = store_value;
        rec.loadSrc = load_src;
        rec.cycle = cnt_.cycles;
        rec.retireIndex = cnt_.instructions;
        rec.state = &state_;
        observer_->onRetire(rec);
    }
}

template <bool Observed>
std::uint64_t
Core::runLoopT(std::uint64_t max_insts)
{
    const std::uint64_t start = cnt_.instructions;
    while (!state_.halted && state_.pc != MagicReturnVa &&
           cnt_.instructions - start < max_insts) {
        stepT<Observed>();
    }
    return cnt_.instructions - start;
}

std::uint64_t
Core::run(std::uint64_t max_insts)
{
    return observer_ ? runLoopT<true>(max_insts)
                     : runLoopT<false>(max_insts);
}

void
Core::beginCall(Addr function, std::uint64_t arg0,
                std::uint64_t arg1, std::uint64_t arg2)
{
    state_.halted = false;
    state_.regs[isa::RegArg0] = arg0;
    state_.regs[isa::RegArg1] = arg1;
    state_.regs[isa::RegArg2] = arg2;

    state_.regs[isa::RegSp] -= 8;
    image_->addressSpace().poke64(state_.regs[isa::RegSp],
                                  MagicReturnVa);
    state_.pc = function;
    curSlot_ = nullptr;

    if (observer_) {
        observer_->onBeginCall(state_, state_.regs[isa::RegSp],
                               MagicReturnVa);
    }
}

bool
Core::runQuantum(std::uint64_t max_insts)
{
    run(max_insts);
    return state_.halted || state_.pc == MagicReturnVa;
}

Core::CallResult
Core::callFunction(Addr function, std::uint64_t arg0,
                   std::uint64_t arg1, std::uint64_t arg2)
{
    beginCall(function, arg0, arg1, arg2);

    const std::uint64_t insts0 = cnt_.instructions;
    const std::uint64_t cycles0 = cnt_.cycles;
    run(UINT64_MAX);

    CallResult result;
    result.instructions = cnt_.instructions - insts0;
    result.cycles = cnt_.cycles - cycles0;
    result.returnValue = state_.regs[isa::RegRet];
    return result;
}

PerfCounters
Core::counters() const
{
    PerfCounters c;
    c.instructions = cnt_.instructions;
    c.cycles = cnt_.cycles;
    c.trampolineInsts = cnt_.trampolineInsts;
    c.trampolineJmps = cnt_.trampolineJmps;
    c.skippedTrampolines = cnt_.skippedTrampolines;
    c.loads = cnt_.loads;
    c.stores = cnt_.stores;
    c.branches = cnt_.branches;
    c.mispredicts = cnt_.mispredicts;
    c.condBranches = cnt_.condBranches;
    c.condMispredicts = cnt_.condMispredicts;
    c.l1iMisses = hierarchy_.l1i().misses();
    c.l1dMisses = hierarchy_.l1d().misses();
    c.l2Misses = hierarchy_.l2().misses();
    c.l3Misses = hierarchy_.l3().misses();
    c.itlbMisses = hierarchy_.itlb().misses();
    c.dtlbMisses = hierarchy_.dtlb().misses();
    c.btbLookups = predictor_.btb().lookups();
    c.btbMisses = predictor_.btb().misses();
    c.resolverCalls = cnt_.resolverCalls;
    return c;
}

void
Core::clearStats()
{
    const std::uint32_t slot = cnt_.issueSlot;
    cnt_ = CoreCounters{};
    cnt_.issueSlot = slot;
    hierarchy_.clearStats();
    predictor_.clearStats();
    if (skipUnit_)
        skipUnit_->clearStats();
}

void
Core::reportMetrics(stats::MetricsRegistry &reg,
                    const std::string &prefix) const
{
    counters().reportMetrics(reg, prefix + ".cpu");
    hierarchy_.reportMetrics(reg, prefix + ".cpu");
    predictor_.reportMetrics(reg, prefix + ".cpu");
    if (skipUnit_)
        skipUnit_->reportMetrics(reg, prefix + ".core");
}

void
Core::clearCallSiteTrace()
{
    trace_.clear();
    tracedSites_.clear();
    hasLastCtl_ = false;
}

void
Core::onExternalGotWrite(Addr addr)
{
    if (skipUnit_)
        skipUnit_->coherenceInvalidate(addr);
    // The write lands in this process's address space, so the stale
    // copy to drop is this ASID's — a targeted invalidation, not a
    // physical snoop.
    hierarchy_.invalidateDataLine(addr, asid_);
    if (observer_)
        observer_->onExternalWrite(addr);
}

void
Core::closeTrace()
{
    if (traceWriter_)
        traceWriter_->close();
}


void
Core::save(snapshot::Serializer &s) const
{
    s.beginStruct("cpu");
    for (const std::uint64_t r : state_.regs)
        s.u64(r);
    s.u64(state_.pc);
    s.boolean(state_.halted);
    s.u32(cnt_.issueSlot);
    s.u16(asid_);
    s.u64(cnt_.instructions);
    s.u64(cnt_.cycles);
    s.u64(cnt_.trampolineInsts);
    s.u64(cnt_.trampolineJmps);
    s.u64(cnt_.skippedTrampolines);
    s.u64(cnt_.loads);
    s.u64(cnt_.stores);
    s.u64(cnt_.branches);
    s.u64(cnt_.mispredicts);
    s.u64(cnt_.condBranches);
    s.u64(cnt_.condMispredicts);
    s.u64(cnt_.resolverCalls);
    // Profiler maps/sets are unordered; emit sorted for stable
    // bytes.
    std::vector<std::pair<Addr, std::uint64_t>> counts(
        trampolineCounts_.begin(), trampolineCounts_.end());
    std::sort(counts.begin(), counts.end());
    s.u64(counts.size());
    for (const auto &[va, n] : counts) {
        s.u64(va);
        s.u64(n);
    }
    s.u64(trace_.size());
    for (const linker::CallSiteRecord &r : trace_) {
        s.u64(r.callVa);
        s.u64(r.trampolineVa);
        s.u64(r.targetVa);
        s.boolean(r.tailJump);
    }
    std::vector<Addr> traced(tracedSites_.begin(),
                             tracedSites_.end());
    std::sort(traced.begin(), traced.end());
    s.u64(traced.size());
    for (const Addr va : traced)
        s.u64(va);
    s.boolean(hasLastCtl_);
    s.u64(lastCtlVa_);
    s.boolean(lastCtlWasCall_);
    s.boolean(skipUnit_ != nullptr);
    s.endStruct();
    hierarchy_.save(s);
    predictor_.save(s);
    if (skipUnit_)
        skipUnit_->save(s);
}

void
Core::load(snapshot::Deserializer &d)
{
    d.enterStruct("cpu");
    for (std::uint64_t &r : state_.regs)
        r = d.u64();
    state_.pc = d.u64();
    state_.halted = d.boolean();
    cnt_.issueSlot = d.u32();
    asid_ = d.u16();
    cnt_.instructions = d.u64();
    cnt_.cycles = d.u64();
    cnt_.trampolineInsts = d.u64();
    cnt_.trampolineJmps = d.u64();
    cnt_.skippedTrampolines = d.u64();
    cnt_.loads = d.u64();
    cnt_.stores = d.u64();
    cnt_.branches = d.u64();
    cnt_.mispredicts = d.u64();
    cnt_.condBranches = d.u64();
    cnt_.condMispredicts = d.u64();
    cnt_.resolverCalls = d.u64();
    trampolineCounts_.clear();
    const std::uint64_t ncounts = d.u64();
    trampolineCounts_.reserve(ncounts);
    for (std::uint64_t i = 0; i < ncounts; ++i) {
        const Addr va = d.u64();
        trampolineCounts_[va] = d.u64();
    }
    trace_.clear();
    const std::uint64_t ntrace = d.u64();
    trace_.reserve(ntrace);
    for (std::uint64_t i = 0; i < ntrace; ++i) {
        linker::CallSiteRecord r;
        r.callVa = d.u64();
        r.trampolineVa = d.u64();
        r.targetVa = d.u64();
        r.tailJump = d.boolean();
        trace_.push_back(r);
    }
    tracedSites_.clear();
    const std::uint64_t ntraced = d.u64();
    tracedSites_.reserve(ntraced);
    for (std::uint64_t i = 0; i < ntraced; ++i)
        tracedSites_.insert(d.u64());
    hasLastCtl_ = d.boolean();
    lastCtlVa_ = d.u64();
    lastCtlWasCall_ = d.boolean();
    d.checkBool(skipUnit_ != nullptr, "skip unit presence");
    d.leaveStruct();
    // The decoded-slot cursor points into the image; it is
    // re-established on the next fetch.
    curSlot_ = nullptr;
    hierarchy_.load(d);
    predictor_.load(d);
    if (skipUnit_)
        skipUnit_->load(d);
}

void
Core::resetSkipUnit(bool enabled,
                    const core::SkipUnitParams &skip)
{
    params_.skipUnitEnabled = enabled;
    params_.skip = skip;
    if (!enabled) {
        skipUnit_.reset();
        return;
    }
    skipUnit_ = std::make_unique<core::TrampolineSkipUnit>(skip);
    skipUnit_->setAsid(asid_);
}

} // namespace dlsim::cpu
