#include "cpu/core.hh"

#include <sstream>

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

#include "snapshot/serializer.hh"

namespace dlsim::cpu
{

namespace
{

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

Core::Core(const CoreParams &params)
    : params_(params), hierarchy_(params.mem),
      predictor_(params.predictor)
{
    dataLineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params_.mem.l1d.lineBytes));
    dataFastOk_ = params_.mem.l1d.lineBytes <= mem::PageBytes;
    fetchLineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params_.mem.l1i.lineBytes));
    fetchFastOk_ = !params_.mem.iPrefetchNextLine &&
                   params_.mem.l1i.lineBytes <= mem::PageBytes;
    if (params_.skipUnitEnabled) {
        skipUnit_ =
            std::make_unique<core::TrampolineSkipUnit>(params_.skip);
    }
    if (!params_.tracePath.empty()) {
        traceWriter_ =
            std::make_unique<trace::TraceWriter>(params_.tracePath);
    }
}

void
Core::attachProcess(linker::Image *image,
                    linker::DynamicLinker *linker, std::uint16_t asid)
{
    image_ = image;
    linker_ = linker;
    asid_ = asid;
    curSlot_ = nullptr;
    if (skipUnit_)
        skipUnit_->setAsid(asid);
}

void
Core::contextSwitch(linker::Image *image,
                    linker::DynamicLinker *linker, std::uint16_t asid)
{
    if (!params_.asidTlbRetention)
        hierarchy_.flushTlbs();
    predictor_.contextSwitch();
    if (skipUnit_)
        skipUnit_->contextSwitch();
    attachProcess(image, linker, asid);
}

void
Core::setState(const MachineState &state)
{
    state_ = state;
    curSlot_ = nullptr;
}

void
Core::initStack(Addr stack_top)
{
    state_.regs[isa::RegSp] = stack_top - 64;
}

// The three leaf functions of the block dispatcher's body loop are
// called half a billion times on the fig5 grid; the call overhead
// alone is measurable, and -O2 declines to inline them on size
// grounds. Force the issue — they only have two call sites each.
#if defined(__GNUC__)
#define DLSIM_HOT_INLINE __attribute__((always_inline)) inline
#else
#define DLSIM_HOT_INLINE inline
#endif

DLSIM_HOT_INLINE std::uint64_t
Core::readData(Addr addr)
{
    ++cnt_.loads;
    // Verified-touch memo probe (see the member doc): a hit is
    // re-proven by key compare inside dataRepeatAt() before
    // anything is touched, so the fast path is exact with no
    // invalidation protocol, and a miss costs one failed compare
    // before the full walk refills the slot.
    const Addr line = addr >> dataLineShift_;
    auto &memo = dataMemo_[line & (RepeatMemoSlots - 1)];
    if (dataFastOk_ && memo.line == line &&
        hierarchy_.dataRepeatAt(memo.ref, addr, asid_)) {
        // Verified dtlb+l1d hit: no extra cycles.
    } else {
        cnt_.cycles += hierarchy_.data(addr, asid_).extraCycles;
        memo = {line, hierarchy_.dataRef()};
    }
    mem::MemFault fault = mem::MemFault::None;
    const auto value = image_->addressSpace().read64(addr, fault);
    if (fault != mem::MemFault::None) {
        throw SimError("load fault at " + hexAddr(addr) + " (pc " +
                       hexAddr(state_.pc) + ")");
    }
    return value;
}

DLSIM_HOT_INLINE void
Core::writeData(Addr addr, std::uint64_t value)
{
    ++cnt_.stores;
    // Verified-touch memo probe; see readData for the argument.
    const Addr line = addr >> dataLineShift_;
    auto &memo = dataMemo_[line & (RepeatMemoSlots - 1)];
    if (dataFastOk_ && memo.line == line &&
        hierarchy_.dataRepeatAt(memo.ref, addr, asid_)) {
        // Verified dtlb+l1d hit: no extra cycles.
    } else {
        cnt_.cycles += hierarchy_.data(addr, asid_).extraCycles;
        memo = {line, hierarchy_.dataRef()};
    }
    const auto fault = image_->addressSpace().write64(addr, value);
    if (fault != mem::MemFault::None) {
        throw SimError("store fault at " + hexAddr(addr) + " (pc " +
                       hexAddr(state_.pc) + ")");
    }
    if (storeSnoopHook_)
        storeSnoopHook_(addr);
}

DLSIM_HOT_INLINE bool
Core::condTaken(isa::CondKind cond, std::uint64_t value)
{
    switch (cond) {
      case isa::CondKind::Eq0:
        return value == 0;
      case isa::CondKind::Ne0:
        return value != 0;
      case isa::CondKind::Lt0:
        return static_cast<std::int64_t>(value) < 0;
      case isa::CondKind::Ge0:
        return static_cast<std::int64_t>(value) >= 0;
    }
    return false;
}

DLSIM_HOT_INLINE std::uint64_t
Core::aluEval(isa::AluKind kind, std::uint64_t a, std::uint64_t b)
{
    switch (kind) {
      case isa::AluKind::Add:
        return a + b;
      case isa::AluKind::Sub:
        return a - b;
      case isa::AluKind::And:
        return a & b;
      case isa::AluKind::Or:
        return a | b;
      case isa::AluKind::Xor:
        return a ^ b;
      case isa::AluKind::Mul:
        return a * b;
      case isa::AluKind::Shr:
        return a >> (b & 63);
    }
    return 0;
}

void
Core::serviceResolver()
{
    auto &regs = state_.regs;

    // Stack on entry: [sp]=module id (PLT0), [sp+8]=relocation
    // index (PLT entry), [sp+16]=original return address.
    const auto module_id =
        static_cast<std::uint32_t>(readData(regs[isa::RegSp]));
    regs[isa::RegSp] += 8;
    const auto reloc_idx =
        static_cast<std::uint32_t>(readData(regs[isa::RegSp]));
    regs[isa::RegSp] += 8;

    const auto result = linker_->resolve(module_id, reloc_idx);

    // The GOT update is an architectural store: the D-cache sees it
    // and — crucially — the bloom filter snoops it, flushing the
    // ABTB exactly once per symbol, at startup (§3.2).
    writeData(result.gotAddr, result.value);
    if (traceWriter_) {
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::Store;
        ev.pc = linker::ResolverVa;
        ev.addr = result.gotAddr;
        traceWriter_->append(ev);
    }
    if (skipUnit_) {
        skipUnit_->retireStore(result.gotAddr);
        // §3.4 alternate implementation: no bloom filter, so the
        // (modified) dynamic linker executes the architecturally
        // visible flush after every GOT update.
        if (params_.skip.explicitInvalidation)
            skipUnit_->explicitFlush();
    }

    // Synthetic cost of the symbol hash lookup in ld.so.
    cnt_.instructions += params_.resolverInsts;
    cnt_.cycles += params_.resolverCycles;
    ++cnt_.resolverCalls;

    state_.pc = result.target;
    curSlot_ = nullptr;

    if (observer_) {
        ResolverRecord rec;
        rec.moduleId = module_id;
        rec.relocIdx = reloc_idx;
        rec.gotAddr = result.gotAddr;
        rec.value = result.value;
        rec.target = result.target;
        rec.cycle = cnt_.cycles;
        rec.retireIndex = cnt_.instructions;
        rec.state = &state_;
        observer_->onResolver(rec);
    }
}

template <bool Observed>
void
Core::stepT()
{
    if (state_.pc == linker::ResolverVa) {
        serviceResolver();
        return;
    }

    if (!curSlot_ || curSlot_->va != state_.pc)
        curSlot_ = image_->decode(state_.pc);
    if (!curSlot_)
        throw SimError("undecodable pc " + hexAddr(state_.pc));

    const linker::Slot &slot = *curSlot_;
    const isa::Instruction &inst = slot.inst;
    const Addr pc = state_.pc;
    const Addr fallthrough = pc + inst.size;

    // Fetch. Base throughput is issueWidth instructions per
    // cycle; miss penalties serialise on top.
    if (fetchRepeatHint_) {
        // The block dispatcher proved this fetch repeats the line
        // of the immediately preceding one (see the terminator
        // hand-off in runBlockLoopT): guaranteed itlb+l1i hit,
        // byte-identical counters to the full fetch() at a fraction
        // of the cost.
        fetchRepeatHint_ = false;
        hierarchy_.fetchRepeat();
    } else {
        // Otherwise probe the I-side verified-touch memo (exact for
        // the same reason as in readData — fetchRepeatAt re-proves
        // the hit by key compare before touching anything).
        const Addr fline = pc >> fetchLineShift_;
        auto &memo = fetchMemo_[fline & (RepeatMemoSlots - 1)];
        if (fetchFastOk_ && memo.line == fline &&
            hierarchy_.fetchRepeatAt(memo.ref, pc, asid_)) {
            // Verified itlb+l1i hit: no extra cycles.
        } else {
            cnt_.cycles += hierarchy_.fetch(pc, asid_).extraCycles;
            memo = {fline, hierarchy_.fetchRef()};
        }
    }
    if (++cnt_.issueSlot >= params_.issueWidth) {
        ++cnt_.cycles;
        cnt_.issueSlot = 0;
    }
    ++cnt_.instructions;
    if (slot.flags & linker::FlagPlt) {
        ++cnt_.trampolineInsts;
        if (slot.flags & linker::FlagPltJmp) {
            ++cnt_.trampolineJmps;
            if (params_.profileTrampolines)
                ++trampolineCounts_[pc];
        }
    }

    const bool is_ctl = isa::isControl(inst.op);
    Addr predicted = fallthrough;
    if (is_ctl)
        predicted = predictor_.predictNext(inst, pc);

    auto &regs = state_.regs;
    const auto effAddr = [&]() -> Addr {
        return inst.memBase == isa::NoReg
                   ? static_cast<Addr>(inst.imm)
                   : regs[inst.memBase] +
                         static_cast<Addr>(inst.imm);
    };

    Addr next = fallthrough;
    bool redirected = false;
    Addr load_src = 0;
    bool did_store = false;
    Addr store_addr = 0;
    std::uint64_t store_value = 0;

    switch (inst.op) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::IntAlu: {
        const std::uint64_t b = inst.src2 == isa::NoReg
                                    ? static_cast<std::uint64_t>(
                                          inst.imm)
                                    : regs[inst.src2];
        regs[inst.dst] = aluEval(inst.alu, regs[inst.src1], b);
        break;
      }
      case isa::Opcode::MovImm:
        regs[inst.dst] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Opcode::Load:
        regs[inst.dst] = readData(effAddr());
        break;
      case isa::Opcode::Store: {
        store_addr = effAddr();
        store_value = regs[inst.src1];
        writeData(store_addr, store_value);
        did_store = true;
        break;
      }
      case isa::Opcode::Push:
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = regs[inst.src1];
        writeData(store_addr, store_value);
        did_store = true;
        break;
      case isa::Opcode::PushImm:
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = static_cast<std::uint64_t>(inst.imm);
        writeData(store_addr, store_value);
        did_store = true;
        break;
      case isa::Opcode::Pop:
        regs[inst.dst] = readData(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        break;
      case isa::Opcode::CallRel:
      case isa::Opcode::CallIndReg:
      case isa::Opcode::CallIndMem: {
        if (inst.op == isa::Opcode::CallRel) {
            next = fallthrough + static_cast<Addr>(inst.imm);
        } else if (inst.op == isa::Opcode::CallIndReg) {
            next = regs[inst.src1];
        } else {
            load_src = effAddr();
            next = readData(load_src);
        }
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = fallthrough;
        writeData(store_addr, store_value);
        did_store = true;
        redirected = true;
        break;
      }
      case isa::Opcode::JmpRel:
        next = fallthrough + static_cast<Addr>(inst.imm);
        redirected = true;
        break;
      case isa::Opcode::JmpIndReg:
        next = regs[inst.src1];
        redirected = true;
        break;
      case isa::Opcode::JmpIndMem:
        load_src = effAddr();
        next = readData(load_src);
        redirected = true;
        break;
      case isa::Opcode::CondBr: {
        ++cnt_.condBranches;
        if (condTaken(inst.cond, regs[inst.src1])) {
            next = fallthrough + static_cast<Addr>(inst.imm);
            redirected = true;
        }
        break;
      }
      case isa::Opcode::Ret:
        next = readData(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        redirected = true;
        break;
      case isa::Opcode::Halt:
        state_.halted = true;
        break;
      case isa::Opcode::AbtbFlush:
        if (skipUnit_)
            skipUnit_->explicitFlush();
        break;
    }

    // Branch resolution, with the ABTB consulted on the
    // architecturally resolved target (§3.2 back end).
    Addr effective = next;
    bool substituted = false;
    core::AbtbEntry sub_entry;
    if (is_ctl) {
        if (skipUnit_ && redirected) {
            if (const auto entry =
                    skipUnit_->substituteTarget(next)) {
                if (params_.checkSkips) {
                    const auto got_value =
                        image_->addressSpace().peek64(
                            entry->gotAddr);
                    if (got_value != entry->function) {
                        throw SimError(
                            "ABTB checker: stale entry for "
                            "trampoline " +
                            hexAddr(entry->trampoline));
                    }
                }
                effective = entry->function;
                substituted = true;
                sub_entry = *entry;
                ++cnt_.skippedTrampolines;
            }
        }
        ++cnt_.branches;
        if (predicted != effective) {
            ++cnt_.mispredicts;
            cnt_.cycles += params_.mispredictPenalty;
            if (inst.op == isa::Opcode::CondBr)
                ++cnt_.condMispredicts;
        }
        predictor_.resolve(inst, pc, redirected, effective);
    }

    // Retire hooks, in program order: the store side of a call
    // retires before its control side arms the pattern detector.
    if (skipUnit_) {
        if (did_store)
            skipUnit_->retireStore(store_addr);
        if (is_ctl)
            skipUnit_->retireControl(inst.op, next, load_src);
        else if (!did_store)
            skipUnit_->retireOther();
    }

    // Retire-stream tracing (the Pin-collection analogue); same
    // store-before-control ordering as the live hooks.
    if (traceWriter_) {
        if (did_store) {
            trace::TraceEvent ev;
            ev.kind = trace::EventKind::Store;
            ev.pc = pc;
            ev.addr = store_addr;
            traceWriter_->append(ev);
        }
        trace::TraceEvent ev;
        if (is_ctl) {
            ev.kind = trace::EventKind::Control;
            ev.op = inst.op;
            ev.flags = slot.flags;
            ev.taken = redirected ? 1 : 0;
            ev.pc = pc;
            ev.addr = next;
            ev.loadSrc = load_src;
        } else {
            ev.kind = trace::EventKind::Other;
            ev.op = inst.op;
            ev.pc = pc;
        }
        traceWriter_->append(ev);
    }

    // Call-site profiler (Pin-tool stand-in): record each PLT
    // trampoline's entering instruction and resolved target.
    if (params_.collectCallSiteTrace && is_ctl) {
        if ((slot.flags & linker::FlagPltJmp) && hasLastCtl_) {
            const linker::Slot *target_slot = image_->decode(next);
            const bool still_lazy =
                next == linker::ResolverVa ||
                (target_slot &&
                 (target_slot->flags & linker::FlagPlt));
            if (!still_lazy &&
                tracedSites_.insert(lastCtlVa_).second) {
                trace_.push_back({lastCtlVa_, pc, next,
                                  !lastCtlWasCall_});
            }
        }
        hasLastCtl_ = true;
        lastCtlVa_ = pc;
        lastCtlWasCall_ = isa::isCall(inst.op);
    }

    // Advance.
    if (is_ctl && (redirected || effective != fallthrough)) {
        // Taken transfer: the fetch group ends here.
        if (cnt_.issueSlot != 0) {
            ++cnt_.cycles;
            cnt_.issueSlot = 0;
        }
        state_.pc = effective;
        curSlot_ = nullptr;
    } else {
        state_.pc = fallthrough;
        curSlot_ = image_->nextSlot(curSlot_);
    }

    if constexpr (Observed) {
        RetireRecord rec;
        rec.pc = pc;
        rec.op = inst.op;
        rec.isControl = is_ctl;
        rec.taken = redirected;
        rec.nextPc = is_ctl ? next : fallthrough;
        rec.effectivePc = is_ctl ? effective : fallthrough;
        rec.substituted = substituted;
        if (substituted) {
            rec.subTrampoline = sub_entry.trampoline;
            rec.subFunction = sub_entry.function;
            rec.subGotAddr = sub_entry.gotAddr;
        }
        rec.didStore = did_store;
        rec.storeAddr = store_addr;
        rec.storeValue = store_value;
        rec.loadSrc = load_src;
        rec.cycle = cnt_.cycles;
        rec.retireIndex = cnt_.instructions;
        rec.state = &state_;
        observer_->onRetire(rec);
    }
}

template <bool Observed>
void
Core::execBodyOpT(const linker::Image::BlockOp &op, bool repeat_line)
{
    const isa::Instruction &inst = op.inst;
    const Addr pc = op.va;
    state_.pc = pc; // faults and observers see the op's pc
    const Addr fallthrough = pc + inst.size;

    // Fetch: the repeat-line case is a guaranteed itlb+l1i hit (see
    // Hierarchy::fetchRepeat), which costs zero extra cycles — the
    // same zero a full fetch() would return for it.
    if (repeat_line)
        hierarchy_.fetchRepeat();
    else
        cnt_.cycles += hierarchy_.fetch(pc, asid_).extraCycles;
    if (++cnt_.issueSlot >= params_.issueWidth) {
        ++cnt_.cycles;
        cnt_.issueSlot = 0;
    }
    ++cnt_.instructions;
    // Body ops can carry FlagPlt (the ARM prologue ALU ops and the
    // x86 lazy-path pushes) but never FlagPltJmp: the PLT jump is a
    // control transfer, i.e. a block terminator.
    if (op.flags & linker::FlagPlt)
        ++cnt_.trampolineInsts;

    auto &regs = state_.regs;
    const auto effAddr = [&]() -> Addr {
        return inst.memBase == isa::NoReg
                   ? static_cast<Addr>(inst.imm)
                   : regs[inst.memBase] +
                         static_cast<Addr>(inst.imm);
    };

    bool did_store = false;
    Addr store_addr = 0;
    std::uint64_t store_value = 0;

    switch (inst.op) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::IntAlu: {
        const std::uint64_t b = inst.src2 == isa::NoReg
                                    ? static_cast<std::uint64_t>(
                                          inst.imm)
                                    : regs[inst.src2];
        regs[inst.dst] = aluEval(inst.alu, regs[inst.src1], b);
        break;
      }
      case isa::Opcode::MovImm:
        regs[inst.dst] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Opcode::Load:
        regs[inst.dst] = readData(effAddr());
        break;
      case isa::Opcode::Store: {
        store_addr = effAddr();
        store_value = regs[inst.src1];
        writeData(store_addr, store_value);
        did_store = true;
        break;
      }
      case isa::Opcode::Push:
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = regs[inst.src1];
        writeData(store_addr, store_value);
        did_store = true;
        break;
      case isa::Opcode::PushImm:
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        store_value = static_cast<std::uint64_t>(inst.imm);
        writeData(store_addr, store_value);
        did_store = true;
        break;
      case isa::Opcode::Pop:
        regs[inst.dst] = readData(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        break;
      case isa::Opcode::AbtbFlush:
        if (skipUnit_)
            skipUnit_->explicitFlush();
        break;
      default:
        // Control transfers and Halt end blocks; the builder never
        // places them in a body.
        break;
    }

    // Retire hooks — the non-control subset of stepT's ordering.
    if (skipUnit_) {
        if (did_store)
            skipUnit_->retireStore(store_addr);
        else
            skipUnit_->retireOther();
    }

    state_.pc = fallthrough;

    if constexpr (Observed) {
        RetireRecord rec;
        rec.pc = pc;
        rec.op = inst.op;
        rec.isControl = false;
        rec.taken = false;
        rec.nextPc = fallthrough;
        rec.effectivePc = fallthrough;
        rec.substituted = false;
        rec.didStore = did_store;
        rec.storeAddr = store_addr;
        rec.storeValue = store_value;
        rec.loadSrc = 0;
        rec.cycle = cnt_.cycles;
        rec.retireIndex = cnt_.instructions;
        rec.state = &state_;
        observer_->onRetire(rec);
    }
}

DLSIM_HOT_INLINE void
Core::execBodyOpFast(const linker::Image::BlockOp &op)
{
    const isa::Instruction &inst = op.inst;
    auto &regs = state_.regs;
    const auto effAddr = [&]() -> Addr {
        return inst.memBase == isa::NoReg
                   ? static_cast<Addr>(inst.imm)
                   : regs[inst.memBase] +
                         static_cast<Addr>(inst.imm);
    };

    bool did_store = false;
    Addr store_addr = 0;

    // Memory ops set state_.pc first so a fault's diagnostic names
    // the faulting op, exactly as the per-op path would.
    switch (inst.op) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::IntAlu: {
        const std::uint64_t b = inst.src2 == isa::NoReg
                                    ? static_cast<std::uint64_t>(
                                          inst.imm)
                                    : regs[inst.src2];
        regs[inst.dst] = aluEval(inst.alu, regs[inst.src1], b);
        break;
      }
      case isa::Opcode::MovImm:
        regs[inst.dst] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Opcode::Load:
        state_.pc = op.va;
        regs[inst.dst] = readData(effAddr());
        break;
      case isa::Opcode::Store:
        state_.pc = op.va;
        store_addr = effAddr();
        writeData(store_addr, regs[inst.src1]);
        did_store = true;
        break;
      case isa::Opcode::Push:
        state_.pc = op.va;
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        writeData(store_addr, regs[inst.src1]);
        did_store = true;
        break;
      case isa::Opcode::PushImm:
        state_.pc = op.va;
        regs[isa::RegSp] -= 8;
        store_addr = regs[isa::RegSp];
        writeData(store_addr,
                  static_cast<std::uint64_t>(inst.imm));
        did_store = true;
        break;
      case isa::Opcode::Pop:
        state_.pc = op.va;
        regs[inst.dst] = readData(regs[isa::RegSp]);
        regs[isa::RegSp] += 8;
        break;
      case isa::Opcode::AbtbFlush:
        if (skipUnit_)
            skipUnit_->explicitFlush();
        break;
      default:
        break;
    }

    // Retire hooks stay per-op: the bloom filter and the ABTB's
    // store snooping are order-sensitive.
    if (skipUnit_) {
        if (did_store)
            skipUnit_->retireStore(store_addr);
        else
            skipUnit_->retireOther();
    }
}

template <bool Observed>
std::uint64_t
Core::runLoopT(std::uint64_t max_insts)
{
    const std::uint64_t start = cnt_.instructions;
    while (!state_.halted && state_.pc != MagicReturnVa &&
           cnt_.instructions - start < max_insts) {
        stepT<Observed>();
    }
    return cnt_.instructions - start;
}

template <bool Observed>
std::uint64_t
Core::runBlockLoopT(std::uint64_t max_insts)
{
    const std::uint64_t start = cnt_.instructions;

    // Same-line repeat fetches can skip the full hierarchy walk:
    // lines are aligned power-of-two runs, so with lineBytes <=
    // PageBytes a same-line pc is also same-page, and nothing
    // between two body-op fetches touches the I-side structures —
    // body ops access only the D side. The next-line prefetcher
    // would break that guarantee (it fills L1I between fetches), so
    // it disables the fast path.
    const mem::HierarchyParams &mp = hierarchy_.params();
    const bool fast_fetch =
        !mp.iPrefetchNextLine && mp.l1i.lineBytes <= mem::PageBytes;
    const std::uint32_t line_shift = static_cast<std::uint32_t>(
        std::countr_zero(mp.l1i.lineBytes));

    // L1I line of the most recent instruction fetch, carried across
    // block boundaries by the unobserved fast path: a body op on the
    // same line as the previous fetch — even the previous block's
    // terminator — is a guaranteed repeat hit. Reset to the no-line
    // sentinel whenever anything other than a plain fetch may have
    // touched the I side.
    Addr last_line = ~Addr{0};

    // Carried block index: deterministic control edges (fall-through
    // and static branch targets) memoize their successor block in
    // the Block itself, so steady-state dispatch follows an index
    // instead of re-probing the hash table. Negative means "probe by
    // pc". Memos are stored in blocks_ and die with it on any flush;
    // block indices are stable otherwise (the cache only appends).
    std::int32_t bi = -1;

    while (!state_.halted && state_.pc != MagicReturnVa &&
           cnt_.instructions - start < max_insts) {
        if (state_.pc == linker::ResolverVa) {
            // May patch code and flush the block cache; never hold
            // block pointers or indices across it.
            serviceResolver();
            last_line = ~Addr{0};
            bi = -1;
            continue;
        }
        if (bi < 0)
            bi = image_->blockIndex(state_.pc);
        if (bi < 0) {
            // Not decodable: take the per-instruction step so the
            // "undecodable pc" error path is byte-identical.
            curSlot_ = nullptr;
            stepT<Observed>();
            last_line = ~Addr{0};
            continue;
        }
        const linker::Image::Block &b = image_->block(bi);
        const linker::Image::BlockOp *ops = image_->blockOps(b);
        const std::uint64_t remaining =
            max_insts - (cnt_.instructions - start);
        const std::uint32_t body = b.bodyOps;
        const std::uint32_t n =
            remaining < body ? static_cast<std::uint32_t>(remaining)
                             : body;
        if constexpr (Observed) {
            for (std::uint32_t i = 0; i < n; ++i) {
                const bool repeat =
                    fast_fetch && i != 0 &&
                    ((ops[i].va ^ ops[i - 1].va) >> line_shift) == 0;
                execBodyOpT<Observed>(ops[i], repeat);
            }
        } else {
            // Bulk bookkeeping for the whole straight-line run. Each
            // op does `if (++issueSlot >= W) { ++cycles; slot = 0; }`,
            // so n ops from slot s wrap floor((s+n)/W) times and land
            // on (s+n) mod W; cycle additions commute, and nothing
            // unobserved reads the counters mid-block, so the block-
            // end totals are byte-identical to the per-op sequence.
            const std::uint64_t slots = cnt_.issueSlot + n;
            cnt_.cycles += slots / params_.issueWidth;
            cnt_.issueSlot = static_cast<std::uint32_t>(
                slots % params_.issueWidth);
            cnt_.instructions += n;
            if (n == body) {
                cnt_.trampolineInsts += b.pltBodyOps;
            } else {
                for (std::uint32_t i = 0; i < n; ++i) {
                    if (ops[i].flags & linker::FlagPlt)
                        ++cnt_.trampolineInsts;
                }
            }
            if (!fast_fetch) {
                for (std::uint32_t i = 0; i < n; ++i) {
                    cnt_.cycles +=
                        hierarchy_.fetch(ops[i].va, asid_)
                            .extraCycles;
                    execBodyOpFast(ops[i]);
                }
            } else {
                // Body VAs are sequential, so same-line ops form
                // runs: one full fetch per new line, then a single
                // batched repeat for the rest of the run.
                std::uint32_t i = 0;
                while (i < n) {
                    const Addr line = ops[i].va >> line_shift;
                    if (line != last_line) {
                        // Line transition: probe the I-side
                        // verified-touch memo first — loop bodies
                        // re-walk the same short cycle of lines, so
                        // the full walk is usually provably a hit.
                        auto &memo =
                            fetchMemo_[line &
                                       (RepeatMemoSlots - 1)];
                        if (memo.line == line &&
                            hierarchy_.fetchRepeatAt(
                                memo.ref, ops[i].va, asid_)) {
                            // Verified itlb+l1i hit: no cycles.
                        } else {
                            cnt_.cycles +=
                                hierarchy_.fetch(ops[i].va, asid_)
                                    .extraCycles;
                            memo = {line, hierarchy_.fetchRef()};
                        }
                        last_line = line;
                        execBodyOpFast(ops[i]);
                        ++i;
                    } else {
                        std::uint32_t j = i + 1;
                        while (j < n &&
                               (ops[j].va >> line_shift) == line)
                            ++j;
                        hierarchy_.fetchRepeatN(j - i);
                        for (; i < j; ++i)
                            execBodyOpFast(ops[i]);
                    }
                }
            }
        }
        if (n < body) {
            // Quantum boundary mid-body: resume at the next op,
            // exactly where the per-instruction loop would stop.
            state_.pc = ops[n].va;
            curSlot_ = nullptr;
            break;
        }
        if (!b.hasTerm) {
            // Capped block or run off decoded code: fall through.
            state_.pc = b.endVa;
            curSlot_ = nullptr;
            std::int32_t succ = b.succFall;
            if (succ < 0) {
                succ = image_->blockIndex(b.endVa);
                if (succ >= 0)
                    image_->memoSuccFall(bi, succ);
            }
            bi = succ;
            continue;
        }
        if (remaining == body) {
            // Quantum boundary right before the terminator.
            state_.pc = b.endVa;
            curSlot_ = nullptr;
            break;
        }
        // Terminator: delegate to stepT with the cursor preset so
        // prediction, ABTB substitution, skip checking, and
        // mispredict accounting run unchanged. Copy what we need
        // first — stepT may observe/throw, and block storage must
        // not be assumed stable past this dispatch.
        const Addr term_va = b.endVa;
        const std::uint32_t term_slot = b.termSlot;
        // Classify the terminator's deterministic edges up front so
        // the landing pc can be matched against them after the step
        // (an ABTB substitution or resolver redirect lands anywhere
        // else and simply falls back to a probe). Copy before stepT:
        // block storage must not be assumed stable across it.
        const isa::Instruction &term = ops[body].inst;
        const isa::Opcode term_op = term.op;
        const Addr term_fall = term_va + term.size;
        const Addr term_target =
            term_fall + static_cast<Addr>(term.imm);
        const bool term_static = term_op == isa::Opcode::JmpRel ||
                                 term_op == isa::Opcode::CallRel ||
                                 term_op == isa::Opcode::CondBr;
        const std::int32_t memo_fall = b.succFall;
        const std::int32_t memo_taken = b.succTaken;
        state_.pc = term_va;
        curSlot_ = image_->slotAt(term_slot);
        // When the terminator shares an L1I line with the last body
        // op — the previous instruction fetched, in both the
        // observed and unobserved body paths — its fetch is a
        // guaranteed repeat: body ops touch only the D side, so the
        // I-side repeat pointers still name that line (ready() turns
        // false if anything unusual intervened). Hand stepT the
        // proof; it takes fetchRepeat() instead of the full walk.
        fetchRepeatHint_ =
            fast_fetch && body != 0 &&
            ((ops[body - 1].va ^ term_va) >> line_shift) == 0 &&
            hierarchy_.fetchRepeatReady();
        stepT<Observed>();
        // stepT's last I-side operation is its fetch of term_va (an
        // ABTB substitution adds no fetch), so the repeat memo stays
        // valid across the block boundary.
        last_line = term_va >> line_shift;
        if (term_op == isa::Opcode::CondBr &&
            state_.pc == term_fall) {
            std::int32_t succ = memo_fall;
            if (succ < 0) {
                succ = image_->blockIndex(state_.pc);
                if (succ >= 0)
                    image_->memoSuccFall(bi, succ);
            }
            bi = succ;
        } else if (term_static && state_.pc == term_target) {
            std::int32_t succ = memo_taken;
            if (succ < 0) {
                succ = image_->blockIndex(state_.pc);
                if (succ >= 0)
                    image_->memoSuccTaken(bi, succ);
            }
            bi = succ;
        } else {
            bi = -1;
        }
    }
    return cnt_.instructions - start;
}

std::uint64_t
Core::run(std::uint64_t max_insts)
{
    // The D-side memo deliberately survives run() boundaries:
    // every hit is re-verified by key compare against the current
    // ASID and cache/TLB contents, so context switches, snapshot
    // restores, and cross-quantum invalidations are all caught by
    // the verification itself (see DataMemo).
    // Trace recording logs an event per retired op, so it keeps the
    // per-instruction loop; otherwise block dispatch is a pure
    // speed-up with identical observables.
    if (params_.blockDispatch && !traceWriter_) {
        return observer_ ? runBlockLoopT<true>(max_insts)
                         : runBlockLoopT<false>(max_insts);
    }
    return observer_ ? runLoopT<true>(max_insts)
                     : runLoopT<false>(max_insts);
}

void
Core::beginCall(Addr function, std::uint64_t arg0,
                std::uint64_t arg1, std::uint64_t arg2)
{
    state_.halted = false;
    state_.regs[isa::RegArg0] = arg0;
    state_.regs[isa::RegArg1] = arg1;
    state_.regs[isa::RegArg2] = arg2;

    state_.regs[isa::RegSp] -= 8;
    image_->addressSpace().poke64(state_.regs[isa::RegSp],
                                  MagicReturnVa);
    state_.pc = function;
    curSlot_ = nullptr;

    if (observer_) {
        observer_->onBeginCall(state_, state_.regs[isa::RegSp],
                               MagicReturnVa);
    }
}

bool
Core::runQuantum(std::uint64_t max_insts)
{
    run(max_insts);
    return state_.halted || state_.pc == MagicReturnVa;
}

Core::CallResult
Core::callFunction(Addr function, std::uint64_t arg0,
                   std::uint64_t arg1, std::uint64_t arg2)
{
    beginCall(function, arg0, arg1, arg2);

    const std::uint64_t insts0 = cnt_.instructions;
    const std::uint64_t cycles0 = cnt_.cycles;
    run(UINT64_MAX);

    CallResult result;
    result.instructions = cnt_.instructions - insts0;
    result.cycles = cnt_.cycles - cycles0;
    result.returnValue = state_.regs[isa::RegRet];
    return result;
}

PerfCounters
Core::counters() const
{
    PerfCounters c;
    c.instructions = cnt_.instructions;
    c.cycles = cnt_.cycles;
    c.trampolineInsts = cnt_.trampolineInsts;
    c.trampolineJmps = cnt_.trampolineJmps;
    c.skippedTrampolines = cnt_.skippedTrampolines;
    c.loads = cnt_.loads;
    c.stores = cnt_.stores;
    c.branches = cnt_.branches;
    c.mispredicts = cnt_.mispredicts;
    c.condBranches = cnt_.condBranches;
    c.condMispredicts = cnt_.condMispredicts;
    c.l1iMisses = hierarchy_.l1i().misses();
    c.l1dMisses = hierarchy_.l1d().misses();
    c.l2Misses = hierarchy_.l2().misses();
    c.l3Misses = hierarchy_.l3().misses();
    c.itlbMisses = hierarchy_.itlb().misses();
    c.dtlbMisses = hierarchy_.dtlb().misses();
    c.btbLookups = predictor_.btb().lookups();
    c.btbMisses = predictor_.btb().misses();
    c.resolverCalls = cnt_.resolverCalls;
    return c;
}

void
Core::clearStats()
{
    const std::uint32_t slot = cnt_.issueSlot;
    cnt_ = CoreCounters{};
    cnt_.issueSlot = slot;
    hierarchy_.clearStats();
    predictor_.clearStats();
    if (skipUnit_)
        skipUnit_->clearStats();
}

void
Core::reportMetrics(stats::MetricsRegistry &reg,
                    const std::string &prefix) const
{
    counters().reportMetrics(reg, prefix + ".cpu");
    hierarchy_.reportMetrics(reg, prefix + ".cpu");
    predictor_.reportMetrics(reg, prefix + ".cpu");
    if (skipUnit_)
        skipUnit_->reportMetrics(reg, prefix + ".core");
}

void
Core::clearCallSiteTrace()
{
    trace_.clear();
    tracedSites_.clear();
    hasLastCtl_ = false;
}

void
Core::onExternalGotWrite(Addr addr)
{
    if (skipUnit_)
        skipUnit_->coherenceInvalidate(addr);
    // The write lands in this process's address space, so the stale
    // copy to drop is this ASID's — a targeted invalidation, not a
    // physical snoop.
    hierarchy_.invalidateDataLine(addr, asid_);
    if (observer_)
        observer_->onExternalWrite(addr);
}

void
Core::closeTrace()
{
    if (traceWriter_)
        traceWriter_->close();
}


void
Core::save(snapshot::Serializer &s) const
{
    s.beginStruct("cpu");
    for (const std::uint64_t r : state_.regs)
        s.u64(r);
    s.u64(state_.pc);
    s.boolean(state_.halted);
    s.u32(cnt_.issueSlot);
    s.u16(asid_);
    s.u64(cnt_.instructions);
    s.u64(cnt_.cycles);
    s.u64(cnt_.trampolineInsts);
    s.u64(cnt_.trampolineJmps);
    s.u64(cnt_.skippedTrampolines);
    s.u64(cnt_.loads);
    s.u64(cnt_.stores);
    s.u64(cnt_.branches);
    s.u64(cnt_.mispredicts);
    s.u64(cnt_.condBranches);
    s.u64(cnt_.condMispredicts);
    s.u64(cnt_.resolverCalls);
    // Profiler maps/sets are unordered; emit sorted for stable
    // bytes.
    std::vector<std::pair<Addr, std::uint64_t>> counts(
        trampolineCounts_.begin(), trampolineCounts_.end());
    std::sort(counts.begin(), counts.end());
    s.u64(counts.size());
    for (const auto &[va, n] : counts) {
        s.u64(va);
        s.u64(n);
    }
    s.u64(trace_.size());
    for (const linker::CallSiteRecord &r : trace_) {
        s.u64(r.callVa);
        s.u64(r.trampolineVa);
        s.u64(r.targetVa);
        s.boolean(r.tailJump);
    }
    std::vector<Addr> traced(tracedSites_.begin(),
                             tracedSites_.end());
    std::sort(traced.begin(), traced.end());
    s.u64(traced.size());
    for (const Addr va : traced)
        s.u64(va);
    s.boolean(hasLastCtl_);
    s.u64(lastCtlVa_);
    s.boolean(lastCtlWasCall_);
    s.boolean(skipUnit_ != nullptr);
    s.endStruct();
    hierarchy_.save(s);
    predictor_.save(s);
    if (skipUnit_)
        skipUnit_->save(s);
}

void
Core::load(snapshot::Deserializer &d)
{
    d.enterStruct("cpu");
    for (std::uint64_t &r : state_.regs)
        r = d.u64();
    state_.pc = d.u64();
    state_.halted = d.boolean();
    cnt_.issueSlot = d.u32();
    asid_ = d.u16();
    cnt_.instructions = d.u64();
    cnt_.cycles = d.u64();
    cnt_.trampolineInsts = d.u64();
    cnt_.trampolineJmps = d.u64();
    cnt_.skippedTrampolines = d.u64();
    cnt_.loads = d.u64();
    cnt_.stores = d.u64();
    cnt_.branches = d.u64();
    cnt_.mispredicts = d.u64();
    cnt_.condBranches = d.u64();
    cnt_.condMispredicts = d.u64();
    cnt_.resolverCalls = d.u64();
    trampolineCounts_.clear();
    const std::uint64_t ncounts = d.u64();
    trampolineCounts_.reserve(ncounts);
    for (std::uint64_t i = 0; i < ncounts; ++i) {
        const Addr va = d.u64();
        trampolineCounts_[va] = d.u64();
    }
    trace_.clear();
    const std::uint64_t ntrace = d.u64();
    trace_.reserve(ntrace);
    for (std::uint64_t i = 0; i < ntrace; ++i) {
        linker::CallSiteRecord r;
        r.callVa = d.u64();
        r.trampolineVa = d.u64();
        r.targetVa = d.u64();
        r.tailJump = d.boolean();
        trace_.push_back(r);
    }
    tracedSites_.clear();
    const std::uint64_t ntraced = d.u64();
    tracedSites_.reserve(ntraced);
    for (std::uint64_t i = 0; i < ntraced; ++i)
        tracedSites_.insert(d.u64());
    hasLastCtl_ = d.boolean();
    lastCtlVa_ = d.u64();
    lastCtlWasCall_ = d.boolean();
    d.checkBool(skipUnit_ != nullptr, "skip unit presence");
    d.leaveStruct();
    // The decoded-slot cursor points into the image; it is
    // re-established on the next fetch.
    curSlot_ = nullptr;
    hierarchy_.load(d);
    predictor_.load(d);
    if (skipUnit_)
        skipUnit_->load(d);
}

void
Core::resetSkipUnit(bool enabled,
                    const core::SkipUnitParams &skip)
{
    params_.skipUnitEnabled = enabled;
    params_.skip = skip;
    if (!enabled) {
        skipUnit_.reset();
        return;
    }
    skipUnit_ = std::make_unique<core::TrampolineSkipUnit>(skip);
    skipUnit_->setAsid(asid_);
}

} // namespace dlsim::cpu
