/**
 * @file
 * Performance-counter block: everything the paper measures with
 * VTune (Table 4) plus the mechanism-specific counters the proposed
 * hardware would expose.
 *
 * All Table 4 quantities are reported per kilo-instruction (PKI),
 * normalised by retired instructions.
 */

#ifndef DLSIM_CPU_PERF_COUNTERS_HH
#define DLSIM_CPU_PERF_COUNTERS_HH

#include <cstdint>
#include <string>

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::cpu
{

/** One snapshot of all counters. */
struct PerfCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    /** Instructions retired inside PLT sections (Table 2). */
    std::uint64_t trampolineInsts = 0;
    /** Trampoline indirect jumps retired (executed invocations). */
    std::uint64_t trampolineJmps = 0;
    /** Trampolines skipped by the ABTB mechanism. */
    std::uint64_t skippedTrampolines = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;

    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l3Misses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t dtlbMisses = 0;

    std::uint64_t btbLookups = 0;
    std::uint64_t btbMisses = 0;

    std::uint64_t resolverCalls = 0;

    /** Per-kilo-instruction view of any counter. */
    double pki(std::uint64_t counter) const;

    /** Instructions per cycle. */
    double ipc() const;

    /** counters of `this` minus `other` (for interval measurement). */
    PerfCounters operator-(const PerfCounters &other) const;

    /** Multi-line human-readable dump. */
    std::string toString() const;

    /**
     * Register every raw counter plus the derived Table-4 PKI
     * gauges, IPC, and trampoline skip rate under `prefix`
     * (e.g. "dlsim.cpu").
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint all counters. */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);
};

} // namespace dlsim::cpu

#endif // DLSIM_CPU_PERF_COUNTERS_HH
