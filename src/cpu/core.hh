/**
 * @file
 * The simulated CPU core.
 *
 * An execution-driven, in-order model with a front-end-accurate
 * timing account: every retired instruction costs one base cycle
 * plus the penalties of its I-side access (I-TLB, L1I, L2, L3), its
 * data access (D-TLB, L1D, ...), and a pipeline-refill penalty on
 * branch misprediction. This is the machinery needed to measure what
 * the paper measures — structure pressure and the cycles it costs —
 * without modelling an out-of-order backend the results don't depend
 * on.
 *
 * The paper's mechanism hooks in at exactly the points §3 describes:
 *
 *  - Branch resolution consults TrampolineSkipUnit::substituteTarget
 *    with the architecturally resolved target; on a hit the returned
 *    function address becomes the effective target: it is compared
 *    against the front-end prediction, trains the BTB, and execution
 *    continues there — the trampoline is never fetched, never
 *    retired, and performs no GOT load.
 *  - The retire stream drives ABTB population (call followed by a
 *    memory-indirect jump) and bloom-filter snooping of stores.
 *
 * The core also provides the evaluation methodology substrate: a
 * call-site profiler (standing in for the paper's Pin tool) and a
 * resolver trap that runs the DynamicLinker with its GOT store
 * performed architecturally on the data path.
 */

#ifndef DLSIM_CPU_CORE_HH
#define DLSIM_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "branch/predictor.hh"
#include "core/skip_unit.hh"
#include "cpu/perf_counters.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"
#include "linker/dynamic_linker.hh"
#include "linker/image.hh"
#include "linker/patcher.hh"
#include "cpu/retire_observer.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace dlsim::cpu
{

using isa::Addr;

/** Sentinel return address used by Core::callFunction. */
constexpr Addr MagicReturnVa = 0x0000700000001000ull;

/** Architectural register state of one hart/process. */
struct MachineState
{
    std::array<std::uint64_t, isa::NumRegs> regs{};
    Addr pc = 0;
    bool halted = false;
};

/** Fatal simulation errors (bad memory access, undecodable pc). */
class SimError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * The per-instruction counters, grouped into one cache-line-aligned
 * block. Each worker thread of a parallel sweep owns one Core;
 * keeping the hot counters contiguous and line-aligned means the
 * per-step increments touch a single private line — they can never
 * false-share with whatever the allocator placed around the Core.
 */
struct alignas(64) CoreCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t trampolineInsts = 0;
    std::uint64_t trampolineJmps = 0;
    std::uint64_t skippedTrampolines = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t resolverCalls = 0;
    /** Position within the current issue group. */
    std::uint32_t issueSlot = 0;
};

/** Core configuration. */
struct CoreParams
{
    mem::HierarchyParams mem;
    branch::PredictorParams predictor;

    /** Pipeline refill cost of a branch misprediction. */
    std::uint32_t mispredictPenalty = 15;

    /**
     * Superscalar issue width: instructions retired per base
     * cycle. Taken control transfers end the fetch group (the
     * classic taken-branch bubble), so every executed trampoline
     * costs a group break on a wide machine — one of the costs
     * trampoline elision removes. Default 4, the width of the
     * paper's Core2-class Xeon testbed.
     */
    std::uint32_t issueWidth = 4;

    /** Enable the paper's mechanism. */
    bool skipUnitEnabled = false;
    core::SkipUnitParams skip;

    /**
     * Synthetic cost of one lazy-resolver invocation (the symbol
     * hash lookup ld.so performs), charged on top of the
     * architectural pops and GOT store the trap performs.
     */
    std::uint64_t resolverInsts = 300;
    std::uint64_t resolverCycles = 900;

    /** Record library call sites (the Pin-tool stand-in). */
    bool collectCallSiteTrace = false;

    /**
     * Count executions per trampoline (Table 3 / Fig. 4 census).
     * Costs a hash update per trampoline execution.
     */
    bool profileTrampolines = false;

    /**
     * When non-empty, record the retire stream (control transfers,
     * stores, and instruction counts) to this file for trace-driven
     * replay (src/trace) — the Pin-collection analogue.
     */
    std::string tracePath;

    /**
     * Architectural checker: on every substitution, verify that the
     * GOT slot still holds the memoized function address — i.e.,
     * that a skip can never diverge from the unmodified machine.
     */
    bool checkSkips = true;

    /** Retain TLB entries across context switches (ASIDs). */
    bool asidTlbRetention = false;

    /**
     * Dispatch whole basic blocks per run-loop iteration from the
     * image's block translation cache instead of one instruction at
     * a time. Purely a simulator-speed knob: counters, timing, and
     * every architectural observable are byte-identical either way
     * (tests/test_block_dispatch.cc), so it is excluded from the
     * snapshot configuration fingerprints. Trace recording
     * (tracePath) forces the per-instruction loop regardless.
     */
    bool blockDispatch = true;
};

/** The simulated core. */
class Core
{
  public:
    explicit Core(const CoreParams &params = {});

    /** @name Process attachment @{ */
    /** Attach (without flushing) — initial program placement. */
    void attachProcess(linker::Image *image,
                       linker::DynamicLinker *linker,
                       std::uint16_t asid);

    /**
     * OS context switch to another process: flushes TLBs (unless
     * ASID retention), the RAS, and the ABTB (per §3.3, unless its
     * ASID retention is configured).
     */
    void contextSwitch(linker::Image *image,
                       linker::DynamicLinker *linker,
                       std::uint16_t asid);
    /** @} */

    MachineState &state() { return state_; }
    void setState(const MachineState &state);

    /** Point the stack pointer at the top of the stack region. */
    void initStack(Addr stack_top);

    /**
     * Run until Halt (or max_insts retired).
     * @return Instructions retired by this call.
     */
    std::uint64_t run(std::uint64_t max_insts = UINT64_MAX);

    /** Result of one function invocation. */
    struct CallResult
    {
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        std::uint64_t returnValue = 0;
    };

    /**
     * Call a function at `function` with up to three integer
     * arguments, running until it returns. Used by the request-
     * driven workload engines to measure per-request latency.
     */
    CallResult callFunction(Addr function,
                            std::uint64_t arg0 = 0,
                            std::uint64_t arg1 = 0,
                            std::uint64_t arg2 = 0);

    /** @name Resumable calls (multicore interleaving) @{ */
    /** Set up a call like callFunction but do not run. */
    void beginCall(Addr function, std::uint64_t arg0 = 0,
                   std::uint64_t arg1 = 0, std::uint64_t arg2 = 0);

    /**
     * Run at most `max_insts` instructions of the in-progress call.
     * @return True once the call has returned (or the hart halted).
     */
    bool runQuantum(std::uint64_t max_insts);
    /** @} */

    /**
     * Snoop hook invoked (with the store address) after every
     * retired store of this core; a multicore system uses it to
     * broadcast coherence invalidations to the other cores.
     */
    void setStoreSnoopHook(std::function<void(Addr)> hook)
    {
        storeSnoopHook_ = std::move(hook);
    }

    /**
     * Attach an architectural-event observer (the lockstep checker).
     * Not owned; pass nullptr to detach. Hooks fire synchronously at
     * retire, resolver service, call setup, and external writes.
     */
    void setRetireObserver(RetireObserver *observer)
    {
        observer_ = observer;
    }
    RetireObserver *observer() const { return observer_; }

    /** @name Cheap counter accessors (harness schedule anchors) @{ */
    std::uint64_t instructionsRetired() const
    {
        return cnt_.instructions;
    }
    std::uint64_t cycleCount() const { return cnt_.cycles; }
    /** @} */

    /** Snapshot of all performance counters. */
    PerfCounters counters() const;

    /** Zero all statistics (leaves cache/predictor *contents*). */
    void clearStats();

    /**
     * Register every structure's statistics: the counter block plus
     * the memory hierarchy under `<prefix>.cpu`, the branch ensemble
     * under `<prefix>.cpu.{btb,direction,ras}`, and the skip unit
     * under `<prefix>.core.{abtb,bloom,skip}` when enabled. Pass
     * "dlsim" for the canonical namespace.
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Null when the mechanism is disabled. */
    core::TrampolineSkipUnit *skipUnit() { return skipUnit_.get(); }
    const core::TrampolineSkipUnit *skipUnit() const
    {
        return skipUnit_.get();
    }

    branch::BranchPredictor &predictor() { return predictor_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    const CoreParams &params() const { return params_; }
    linker::Image *image() { return image_; }

    /** Toggle block dispatch (reconfigure/bench --blocks). Takes
     *  effect at the next run() call; safe at any quantum boundary
     *  since the two loops are observably identical. */
    void setBlockDispatch(bool on) { params_.blockDispatch = on; }

    /** @name Profiler output (Pin-tool stand-in) @{ */
    const linker::CallSiteTrace &callSiteTrace() const
    {
        return trace_;
    }
    void clearCallSiteTrace();

    /** Per-trampoline execution counts (profileTrampolines mode). */
    const std::unordered_map<Addr, std::uint64_t> &
    trampolineCounts() const
    {
        return trampolineCounts_;
    }
    /** @} */

    /**
     * External (non-CPU) write to a GOT address, e.g. by dlclose.
     * Forwarded to the skip unit as a coherence invalidation and to
     * the caches.
     */
    void onExternalGotWrite(Addr addr);

    /**
     * Checkpoint the core: architectural state, counters, profiler
     * state, the memory hierarchy, the branch ensemble, and the
     * skip unit (when present). The attached image/linker are not
     * part of the core's snapshot; composers save them separately
     * and re-attach on load.
     */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on any structural mismatch
     *  (including skip unit presence). */
    void load(snapshot::Deserializer &d);

    /**
     * Override timing-only knobs after a snapshot restore, so one
     * warm checkpoint can fan out a machine sweep. These scalars
     * never influence which state structures *contain* — only the
     * cycle cost of events — so changing them post-restore is
     * exactly equivalent to having warmed up with them.
     */
    void setTiming(std::uint32_t issue_width,
                   std::uint32_t mispredict_penalty,
                   std::uint64_t resolver_insts,
                   std::uint64_t resolver_cycles)
    {
        params_.issueWidth = issue_width;
        params_.mispredictPenalty = mispredict_penalty;
        params_.resolverInsts = resolver_insts;
        params_.resolverCycles = resolver_cycles;
    }

    /**
     * Replace the skip unit with a cold one of the given geometry
     * (or remove it). Snapshot-based sweeps restore a shared warm
     * machine and then give every arm its own fresh ABTB/bloom
     * configuration; measurement starts with the unit empty in
     * every arm, so arms differ only in the mechanism under test.
     */
    void resetSkipUnit(bool enabled,
                       const core::SkipUnitParams &skip);

    /** Flush and finalise the retire trace (tracePath mode). */
    void closeTrace();

  private:
    /**
     * The per-instruction loop is instantiated twice, on whether an
     * observer is attached. The overwhelmingly common case — no
     * observer — compiles to a loop with no null-check and no
     * RetireRecord assembly at all; the run entry points dispatch
     * once per quantum instead of once per instruction.
     */
    template <bool Observed> void stepT();
    template <bool Observed>
    std::uint64_t runLoopT(std::uint64_t max_insts);

    /**
     * Block dispatcher: one block-cache lookup per straight-line
     * run, body ops executed by the lean execBodyOpT, the
     * terminator delegated to stepT (which keeps prediction, ABTB
     * substitution, and mispredict accounting in one place).
     * Byte-identical observables to runLoopT.
     */
    template <bool Observed>
    std::uint64_t runBlockLoopT(std::uint64_t max_insts);

    /** Execute one non-control block-body op; exact replica of the
     *  stepT path for the non-control opcode subset. `repeat_line`
     *  selects the hierarchy's repeat-fetch fast path. */
    template <bool Observed>
    void execBodyOpT(const linker::Image::BlockOp &op,
                     bool repeat_line);

    /**
     * Leaner still: the unobserved block loop hoists the fetch,
     * issue-slot, instruction-count, and pc bookkeeping out of the
     * per-op body (batched per straight-line run), leaving only the
     * architectural side effects. Counters and state after a block
     * are byte-identical to the execBodyOpT sequence.
     */
    void execBodyOpFast(const linker::Image::BlockOp &op);
    void serviceResolver();

    std::uint64_t readData(Addr addr);
    void writeData(Addr addr, std::uint64_t value);

    static bool condTaken(isa::CondKind cond, std::uint64_t value);
    static std::uint64_t aluEval(isa::AluKind kind, std::uint64_t a,
                                 std::uint64_t b);

    CoreParams params_;
    mem::Hierarchy hierarchy_;
    branch::BranchPredictor predictor_;
    std::unique_ptr<core::TrampolineSkipUnit> skipUnit_;

    linker::Image *image_ = nullptr;
    linker::DynamicLinker *linker_ = nullptr;
    std::uint16_t asid_ = 0;

    MachineState state_;
    const linker::Slot *curSlot_ = nullptr;

    /**
     * @name Verified-touch memos
     * Direct-mapped (by L1-line low bits) tables of the D-TLB/L1D
     * and I-TLB/L1I slots past walks resolved to
     * (Hierarchy::dataRef / fetchRef). A later access probing the
     * same table slot is settled by dataRepeatAt()/fetchRepeatAt(),
     * which re-verify both pointers by key compare — the key
     * embeds line, ASID, and validity — before touching anything.
     * The memos therefore need NO invalidation protocol at all:
     * ASID switches, snapshot restores, coherence snoops, and
     * evictions all change or clear the keys, and a failed compare
     * simply falls back to the full walk. Direct mapping keeps the
     * probe to a single compare while covering the few lines hot
     * code alternates between (stack + source + destination on the
     * D side, a loop body's line cycle on the I side). Gated off
     * entirely when an L1 line spans pages (one TLB entry vouches
     * for one page); the I memo additionally requires the next-line
     * prefetcher off (callers gate on their fast-fetch flag).
     * @{ */
    struct RepeatMemo
    {
        /** Line tag: fail fast on a plain compare before the
         *  verify derefs the (possibly cold) TLB/cache slots. */
        Addr line = ~Addr{0};
        mem::Hierarchy::RepeatRef ref{};
    };
    /** 32 slots × 24 bytes × two memos stays comfortably host-L1-
     *  resident while covering a ~2KB loop body's line cycle (I
     *  side) and the handful of stack/source/destination/GOT lines
     *  hot code alternates between (D side). */
    static constexpr std::size_t RepeatMemoSlots = 32;
    RepeatMemo dataMemo_[RepeatMemoSlots];
    RepeatMemo fetchMemo_[RepeatMemoSlots];
    std::uint32_t dataLineShift_ = 0;
    std::uint32_t fetchLineShift_ = 0;
    bool dataFastOk_ = false;
    /** True when the I-side memo may be probed at all: next-line
     *  prefetcher off (fetchRepeatAt cannot reproduce its fill) and
     *  L1I lines within one page. */
    bool fetchFastOk_ = false;
    /**
     * Set by the block dispatcher immediately before a terminator
     * stepT() it has proven to be a same-L1I-line repeat fetch;
     * consumed (and cleared) by stepT's fetch stage, which then
     * takes the fetchRepeat() fast path instead of the full walk.
     */
    bool fetchRepeatHint_ = false;
    /** @} */
    std::function<void(Addr)> storeSnoopHook_;
    RetireObserver *observer_ = nullptr;
    std::unique_ptr<trace::TraceWriter> traceWriter_;

    /** Hot per-instruction counters (one aligned block). */
    CoreCounters cnt_;

    /** Profiler state. */
    std::unordered_map<Addr, std::uint64_t> trampolineCounts_;
    linker::CallSiteTrace trace_;
    std::unordered_set<Addr> tracedSites_;
    bool hasLastCtl_ = false;
    Addr lastCtlVa_ = 0;
    bool lastCtlWasCall_ = false;
};

} // namespace dlsim::cpu

#endif // DLSIM_CPU_CORE_HH
