#include "cpu/perf_counters.hh"

#include <iomanip>
#include <sstream>

#include "snapshot/serializer.hh"

#include "stats/metrics.hh"

namespace dlsim::cpu
{

double
PerfCounters::pki(std::uint64_t counter) const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(counter) /
           static_cast<double>(instructions);
}

double
PerfCounters::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(instructions) /
           static_cast<double>(cycles);
}

PerfCounters
PerfCounters::operator-(const PerfCounters &other) const
{
    PerfCounters d;
    d.instructions = instructions - other.instructions;
    d.cycles = cycles - other.cycles;
    d.trampolineInsts = trampolineInsts - other.trampolineInsts;
    d.trampolineJmps = trampolineJmps - other.trampolineJmps;
    d.skippedTrampolines =
        skippedTrampolines - other.skippedTrampolines;
    d.loads = loads - other.loads;
    d.stores = stores - other.stores;
    d.branches = branches - other.branches;
    d.mispredicts = mispredicts - other.mispredicts;
    d.condBranches = condBranches - other.condBranches;
    d.condMispredicts = condMispredicts - other.condMispredicts;
    d.l1iMisses = l1iMisses - other.l1iMisses;
    d.l1dMisses = l1dMisses - other.l1dMisses;
    d.l2Misses = l2Misses - other.l2Misses;
    d.l3Misses = l3Misses - other.l3Misses;
    d.itlbMisses = itlbMisses - other.itlbMisses;
    d.dtlbMisses = dtlbMisses - other.dtlbMisses;
    d.btbLookups = btbLookups - other.btbLookups;
    d.btbMisses = btbMisses - other.btbMisses;
    d.resolverCalls = resolverCalls - other.resolverCalls;
    return d;
}

std::string
PerfCounters::toString() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    os << "instructions:          " << instructions << "\n"
       << "cycles:                " << cycles << " (IPC " << ipc()
       << ")\n"
       << "trampoline insts PKI:  " << pki(trampolineInsts) << "\n"
       << "skipped trampolines:   " << skippedTrampolines << "\n"
       << "I-$ misses PKI:        " << pki(l1iMisses) << "\n"
       << "I-TLB misses PKI:      " << pki(itlbMisses) << "\n"
       << "D-$ misses PKI:        " << pki(l1dMisses) << "\n"
       << "D-TLB misses PKI:      " << pki(dtlbMisses) << "\n"
       << "branch mispredicts PKI:" << pki(mispredicts) << "\n"
       << "resolver calls:        " << resolverCalls << "\n";
    return os.str();
}

void
PerfCounters::reportMetrics(stats::MetricsRegistry &reg,
                            const std::string &prefix) const
{
    reg.counter(prefix + ".instructions", instructions);
    reg.counter(prefix + ".cycles", cycles);
    reg.counter(prefix + ".trampoline_insts", trampolineInsts);
    reg.counter(prefix + ".trampoline_jmps", trampolineJmps);
    reg.counter(prefix + ".skipped_trampolines",
                skippedTrampolines);
    reg.counter(prefix + ".loads", loads);
    reg.counter(prefix + ".stores", stores);
    reg.counter(prefix + ".branches", branches);
    reg.counter(prefix + ".mispredicts", mispredicts);
    reg.counter(prefix + ".cond_branches", condBranches);
    reg.counter(prefix + ".cond_mispredicts", condMispredicts);
    reg.counter(prefix + ".l1i.misses", l1iMisses);
    reg.counter(prefix + ".l1d.misses", l1dMisses);
    reg.counter(prefix + ".l2.misses", l2Misses);
    reg.counter(prefix + ".l3.misses", l3Misses);
    reg.counter(prefix + ".itlb.misses", itlbMisses);
    reg.counter(prefix + ".dtlb.misses", dtlbMisses);
    reg.counter(prefix + ".btb.lookups", btbLookups);
    reg.counter(prefix + ".btb.misses", btbMisses);
    reg.counter(prefix + ".resolver_calls", resolverCalls);

    // The Table-4 rows, as the paper reports them.
    reg.gauge(prefix + ".trampoline_insts_pki",
              pki(trampolineInsts));
    reg.gauge(prefix + ".l1i_misses_pki", pki(l1iMisses));
    reg.gauge(prefix + ".l1d_misses_pki", pki(l1dMisses));
    reg.gauge(prefix + ".itlb_misses_pki", pki(itlbMisses));
    reg.gauge(prefix + ".dtlb_misses_pki", pki(dtlbMisses));
    reg.gauge(prefix + ".mispredicts_pki", pki(mispredicts));
    reg.gauge(prefix + ".ipc", ipc());
    reg.gauge(prefix + ".trampoline_skip_rate",
              trampolineJmps + skippedTrampolines == 0
                  ? 0.0
                  : static_cast<double>(skippedTrampolines) /
                        static_cast<double>(trampolineJmps +
                                            skippedTrampolines));
}


void
PerfCounters::save(snapshot::Serializer &s) const
{
    s.beginStruct("perf");
    s.u64(instructions);
    s.u64(cycles);
    s.u64(trampolineInsts);
    s.u64(trampolineJmps);
    s.u64(skippedTrampolines);
    s.u64(loads);
    s.u64(stores);
    s.u64(branches);
    s.u64(mispredicts);
    s.u64(condBranches);
    s.u64(condMispredicts);
    s.u64(l1iMisses);
    s.u64(l1dMisses);
    s.u64(l2Misses);
    s.u64(l3Misses);
    s.u64(itlbMisses);
    s.u64(dtlbMisses);
    s.u64(btbLookups);
    s.u64(btbMisses);
    s.u64(resolverCalls);
    s.endStruct();
}

void
PerfCounters::load(snapshot::Deserializer &d)
{
    d.enterStruct("perf");
    instructions = d.u64();
    cycles = d.u64();
    trampolineInsts = d.u64();
    trampolineJmps = d.u64();
    skippedTrampolines = d.u64();
    loads = d.u64();
    stores = d.u64();
    branches = d.u64();
    mispredicts = d.u64();
    condBranches = d.u64();
    condMispredicts = d.u64();
    l1iMisses = d.u64();
    l1dMisses = d.u64();
    l2Misses = d.u64();
    l3Misses = d.u64();
    itlbMisses = d.u64();
    dtlbMisses = d.u64();
    btbLookups = d.u64();
    btbMisses = d.u64();
    resolverCalls = d.u64();
    d.leaveStruct();
}

} // namespace dlsim::cpu
