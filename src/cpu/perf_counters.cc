#include "cpu/perf_counters.hh"

#include <iomanip>
#include <sstream>

namespace dlsim::cpu
{

double
PerfCounters::pki(std::uint64_t counter) const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(counter) /
           static_cast<double>(instructions);
}

double
PerfCounters::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(instructions) /
           static_cast<double>(cycles);
}

PerfCounters
PerfCounters::operator-(const PerfCounters &other) const
{
    PerfCounters d;
    d.instructions = instructions - other.instructions;
    d.cycles = cycles - other.cycles;
    d.trampolineInsts = trampolineInsts - other.trampolineInsts;
    d.trampolineJmps = trampolineJmps - other.trampolineJmps;
    d.skippedTrampolines =
        skippedTrampolines - other.skippedTrampolines;
    d.loads = loads - other.loads;
    d.stores = stores - other.stores;
    d.branches = branches - other.branches;
    d.mispredicts = mispredicts - other.mispredicts;
    d.condBranches = condBranches - other.condBranches;
    d.condMispredicts = condMispredicts - other.condMispredicts;
    d.l1iMisses = l1iMisses - other.l1iMisses;
    d.l1dMisses = l1dMisses - other.l1dMisses;
    d.l2Misses = l2Misses - other.l2Misses;
    d.l3Misses = l3Misses - other.l3Misses;
    d.itlbMisses = itlbMisses - other.itlbMisses;
    d.dtlbMisses = dtlbMisses - other.dtlbMisses;
    d.btbLookups = btbLookups - other.btbLookups;
    d.btbMisses = btbMisses - other.btbMisses;
    d.resolverCalls = resolverCalls - other.resolverCalls;
    return d;
}

std::string
PerfCounters::toString() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    os << "instructions:          " << instructions << "\n"
       << "cycles:                " << cycles << " (IPC " << ipc()
       << ")\n"
       << "trampoline insts PKI:  " << pki(trampolineInsts) << "\n"
       << "skipped trampolines:   " << skippedTrampolines << "\n"
       << "I-$ misses PKI:        " << pki(l1iMisses) << "\n"
       << "I-TLB misses PKI:      " << pki(itlbMisses) << "\n"
       << "D-$ misses PKI:        " << pki(l1dMisses) << "\n"
       << "D-TLB misses PKI:      " << pki(dtlbMisses) << "\n"
       << "branch mispredicts PKI:" << pki(mispredicts) << "\n"
       << "resolver calls:        " << resolverCalls << "\n";
    return os.str();
}

} // namespace dlsim::cpu
