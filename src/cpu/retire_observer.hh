/**
 * @file
 * Retire-stream observer interface.
 *
 * The timing core publishes one record per architectural event — a
 * retired instruction, a serviced resolver trap, a call setup, an
 * external (cross-core or dlclose) write — to an attached observer.
 * The lockstep checker in src/check implements this interface to
 * replay every event on a functional reference core and compare
 * architectural state instruction by instruction; dlsim_cpu itself
 * has no dependency on the checker.
 *
 * Records carry the *architectural* view (the resolved target before
 * any ABTB substitution) alongside the effective view (after
 * substitution), so an observer can verify that a substituted target
 * is reachable from the architectural one by executing trampoline
 * instructions only.
 */

#ifndef DLSIM_CPU_RETIRE_OBSERVER_HH
#define DLSIM_CPU_RETIRE_OBSERVER_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace dlsim::cpu
{

struct MachineState;

/** One retired instruction, as the timing core saw it. */
struct RetireRecord
{
    isa::Addr pc = 0;
    isa::Opcode op = isa::Opcode::Nop;
    bool isControl = false;
    /** Control transfer actually redirected (taken). */
    bool taken = false;
    /** Architecturally resolved next pc (before substitution);
     *  the fall-through for non-control instructions. */
    isa::Addr nextPc = 0;
    /** Pc the core will actually fetch next (after substitution). */
    isa::Addr effectivePc = 0;

    /** ABTB substitution applied to this transfer. */
    bool substituted = false;
    isa::Addr subTrampoline = 0; ///< ABTB key (== nextPc).
    isa::Addr subFunction = 0;   ///< Memoized target (== effectivePc).
    isa::Addr subGotAddr = 0;    ///< Guarded GOT slot.

    bool didStore = false;
    isa::Addr storeAddr = 0;
    std::uint64_t storeValue = 0;
    /** Load-source address of memory-indirect transfers (GOT slot). */
    isa::Addr loadSrc = 0;

    std::uint64_t cycle = 0;       ///< Core cycle count at retire.
    std::uint64_t retireIndex = 0; ///< Instructions retired so far.

    /** Post-retire architectural state (registers, pc, halted). */
    const MachineState *state = nullptr;
};

/** One serviced lazy-resolver trap. */
struct ResolverRecord
{
    std::uint32_t moduleId = 0;
    std::uint32_t relocIdx = 0;
    isa::Addr gotAddr = 0;       ///< Slot the resolver stored to.
    std::uint64_t value = 0;     ///< Value stored (resolved addr).
    isa::Addr target = 0;        ///< Pc after the trap returns.
    std::uint64_t cycle = 0;
    std::uint64_t retireIndex = 0;
    const MachineState *state = nullptr;
};

/**
 * Observer of one core's architectural event stream. All hooks are
 * invoked synchronously on the simulation thread, in program order.
 */
class RetireObserver
{
  public:
    virtual ~RetireObserver() = default;

    /**
     * Core::beginCall completed: registers are set up and the magic
     * return address has been poked at [sp] (bypassing the data
     * path). `state` is the post-setup machine state.
     */
    virtual void onBeginCall(const MachineState &state,
                             isa::Addr ret_slot_addr,
                             std::uint64_t ret_value) = 0;

    /** One instruction retired. */
    virtual void onRetire(const RetireRecord &rec) = 0;

    /** One resolver trap serviced (GOT store already performed). */
    virtual void onResolver(const ResolverRecord &rec) = 0;

    /**
     * A write to this core's address space performed outside its
     * own data path (cross-core store, dlclose, harness event). The
     * new value is already visible in the shared address space.
     */
    virtual void onExternalWrite(isa::Addr addr) = 0;

    /**
     * The core's architectural state was replaced wholesale after a
     * functional fast-forward phase (sim::SampledExecution): the
     * skipped retires were executed on a functional engine with
     * stores applied to the real address space, and `state` is the
     * machine at the point detailed execution resumes. An observer
     * tracking state (the lockstep checker) must re-adopt it, as it
     * would after a snapshot restore. Default: ignore.
     */
    virtual void onFastForward(const MachineState &state)
    {
        (void)state;
    }
};

} // namespace dlsim::cpu

#endif // DLSIM_CPU_RETIRE_OBSERVER_HH
