# Empty dependencies file for linker_tour.
# This may be replaced when dependencies are built.
