file(REMOVE_RECURSE
  "CMakeFiles/linker_tour.dir/linker_tour.cpp.o"
  "CMakeFiles/linker_tour.dir/linker_tour.cpp.o.d"
  "linker_tour"
  "linker_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linker_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
