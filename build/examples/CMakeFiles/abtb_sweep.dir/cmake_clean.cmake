file(REMOVE_RECURSE
  "CMakeFiles/abtb_sweep.dir/abtb_sweep.cpp.o"
  "CMakeFiles/abtb_sweep.dir/abtb_sweep.cpp.o.d"
  "abtb_sweep"
  "abtb_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abtb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
