# Empty compiler generated dependencies file for abtb_sweep.
# This may be replaced when dependencies are built.
