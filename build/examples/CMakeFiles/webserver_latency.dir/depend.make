# Empty dependencies file for webserver_latency.
# This may be replaced when dependencies are built.
