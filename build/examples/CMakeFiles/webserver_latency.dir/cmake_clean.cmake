file(REMOVE_RECURSE
  "CMakeFiles/webserver_latency.dir/webserver_latency.cpp.o"
  "CMakeFiles/webserver_latency.dir/webserver_latency.cpp.o.d"
  "webserver_latency"
  "webserver_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
