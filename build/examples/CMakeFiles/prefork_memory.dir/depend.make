# Empty dependencies file for prefork_memory.
# This may be replaced when dependencies are built.
