file(REMOVE_RECURSE
  "CMakeFiles/prefork_memory.dir/prefork_memory.cpp.o"
  "CMakeFiles/prefork_memory.dir/prefork_memory.cpp.o.d"
  "prefork_memory"
  "prefork_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefork_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
