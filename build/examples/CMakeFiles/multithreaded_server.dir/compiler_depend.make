# Empty compiler generated dependencies file for multithreaded_server.
# This may be replaced when dependencies are built.
