file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_server.dir/multithreaded_server.cpp.o"
  "CMakeFiles/multithreaded_server.dir/multithreaded_server.cpp.o.d"
  "multithreaded_server"
  "multithreaded_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
