# Empty dependencies file for dlsim_cli.
# This may be replaced when dependencies are built.
