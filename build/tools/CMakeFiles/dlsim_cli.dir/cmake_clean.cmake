file(REMOVE_RECURSE
  "CMakeFiles/dlsim_cli.dir/dlsim_cli.cc.o"
  "CMakeFiles/dlsim_cli.dir/dlsim_cli.cc.o.d"
  "dlsim_cli"
  "dlsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
