file(REMOVE_RECURSE
  "CMakeFiles/test_skip_integration.dir/test_skip_integration.cc.o"
  "CMakeFiles/test_skip_integration.dir/test_skip_integration.cc.o.d"
  "test_skip_integration"
  "test_skip_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skip_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
