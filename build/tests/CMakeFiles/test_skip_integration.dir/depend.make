# Empty dependencies file for test_skip_integration.
# This may be replaced when dependencies are built.
