file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_exec.dir/test_cpu_exec.cc.o"
  "CMakeFiles/test_cpu_exec.dir/test_cpu_exec.cc.o.d"
  "test_cpu_exec"
  "test_cpu_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
