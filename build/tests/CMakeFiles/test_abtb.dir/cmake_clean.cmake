file(REMOVE_RECURSE
  "CMakeFiles/test_abtb.dir/test_abtb.cc.o"
  "CMakeFiles/test_abtb.dir/test_abtb.cc.o.d"
  "test_abtb"
  "test_abtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
