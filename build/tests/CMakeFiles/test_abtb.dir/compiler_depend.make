# Empty compiler generated dependencies file for test_abtb.
# This may be replaced when dependencies are built.
