file(REMOVE_RECURSE
  "CMakeFiles/test_dynlink.dir/test_dynlink.cc.o"
  "CMakeFiles/test_dynlink.dir/test_dynlink.cc.o.d"
  "test_dynlink"
  "test_dynlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
