# Empty dependencies file for test_arm_plt.
# This may be replaced when dependencies are built.
