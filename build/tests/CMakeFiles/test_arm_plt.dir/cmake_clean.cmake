file(REMOVE_RECURSE
  "CMakeFiles/test_arm_plt.dir/test_arm_plt.cc.o"
  "CMakeFiles/test_arm_plt.dir/test_arm_plt.cc.o.d"
  "test_arm_plt"
  "test_arm_plt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
