file(REMOVE_RECURSE
  "CMakeFiles/test_elf_builder.dir/test_elf_builder.cc.o"
  "CMakeFiles/test_elf_builder.dir/test_elf_builder.cc.o.d"
  "test_elf_builder"
  "test_elf_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elf_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
