# Empty compiler generated dependencies file for test_elf_builder.
# This may be replaced when dependencies are built.
