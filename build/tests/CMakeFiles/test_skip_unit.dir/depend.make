# Empty dependencies file for test_skip_unit.
# This may be replaced when dependencies are built.
