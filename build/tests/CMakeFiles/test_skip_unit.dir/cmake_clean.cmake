file(REMOVE_RECURSE
  "CMakeFiles/test_skip_unit.dir/test_skip_unit.cc.o"
  "CMakeFiles/test_skip_unit.dir/test_skip_unit.cc.o.d"
  "test_skip_unit"
  "test_skip_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skip_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
