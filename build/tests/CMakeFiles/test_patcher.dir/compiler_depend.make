# Empty compiler generated dependencies file for test_patcher.
# This may be replaced when dependencies are built.
