file(REMOVE_RECURSE
  "CMakeFiles/test_patcher.dir/test_patcher.cc.o"
  "CMakeFiles/test_patcher.dir/test_patcher.cc.o.d"
  "test_patcher"
  "test_patcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
