
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abtb.cc" "src/core/CMakeFiles/dlsim_core.dir/abtb.cc.o" "gcc" "src/core/CMakeFiles/dlsim_core.dir/abtb.cc.o.d"
  "/root/repo/src/core/bloom_filter.cc" "src/core/CMakeFiles/dlsim_core.dir/bloom_filter.cc.o" "gcc" "src/core/CMakeFiles/dlsim_core.dir/bloom_filter.cc.o.d"
  "/root/repo/src/core/skip_unit.cc" "src/core/CMakeFiles/dlsim_core.dir/skip_unit.cc.o" "gcc" "src/core/CMakeFiles/dlsim_core.dir/skip_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/dlsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
