# Empty compiler generated dependencies file for dlsim_core.
# This may be replaced when dependencies are built.
