file(REMOVE_RECURSE
  "CMakeFiles/dlsim_core.dir/abtb.cc.o"
  "CMakeFiles/dlsim_core.dir/abtb.cc.o.d"
  "CMakeFiles/dlsim_core.dir/bloom_filter.cc.o"
  "CMakeFiles/dlsim_core.dir/bloom_filter.cc.o.d"
  "CMakeFiles/dlsim_core.dir/skip_unit.cc.o"
  "CMakeFiles/dlsim_core.dir/skip_unit.cc.o.d"
  "libdlsim_core.a"
  "libdlsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
