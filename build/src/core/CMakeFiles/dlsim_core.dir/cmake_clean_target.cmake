file(REMOVE_RECURSE
  "libdlsim_core.a"
)
