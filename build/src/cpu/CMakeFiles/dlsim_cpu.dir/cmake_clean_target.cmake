file(REMOVE_RECURSE
  "libdlsim_cpu.a"
)
