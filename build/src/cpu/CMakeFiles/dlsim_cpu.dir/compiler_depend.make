# Empty compiler generated dependencies file for dlsim_cpu.
# This may be replaced when dependencies are built.
