file(REMOVE_RECURSE
  "CMakeFiles/dlsim_cpu.dir/core.cc.o"
  "CMakeFiles/dlsim_cpu.dir/core.cc.o.d"
  "CMakeFiles/dlsim_cpu.dir/perf_counters.cc.o"
  "CMakeFiles/dlsim_cpu.dir/perf_counters.cc.o.d"
  "libdlsim_cpu.a"
  "libdlsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
