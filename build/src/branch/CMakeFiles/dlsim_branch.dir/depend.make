# Empty dependencies file for dlsim_branch.
# This may be replaced when dependencies are built.
