file(REMOVE_RECURSE
  "libdlsim_branch.a"
)
