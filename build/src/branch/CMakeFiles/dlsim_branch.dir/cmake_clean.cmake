file(REMOVE_RECURSE
  "CMakeFiles/dlsim_branch.dir/btb.cc.o"
  "CMakeFiles/dlsim_branch.dir/btb.cc.o.d"
  "CMakeFiles/dlsim_branch.dir/direction.cc.o"
  "CMakeFiles/dlsim_branch.dir/direction.cc.o.d"
  "CMakeFiles/dlsim_branch.dir/indirect.cc.o"
  "CMakeFiles/dlsim_branch.dir/indirect.cc.o.d"
  "CMakeFiles/dlsim_branch.dir/predictor.cc.o"
  "CMakeFiles/dlsim_branch.dir/predictor.cc.o.d"
  "CMakeFiles/dlsim_branch.dir/ras.cc.o"
  "CMakeFiles/dlsim_branch.dir/ras.cc.o.d"
  "libdlsim_branch.a"
  "libdlsim_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
