file(REMOVE_RECURSE
  "CMakeFiles/dlsim_workload.dir/engine.cc.o"
  "CMakeFiles/dlsim_workload.dir/engine.cc.o.d"
  "CMakeFiles/dlsim_workload.dir/profiles.cc.o"
  "CMakeFiles/dlsim_workload.dir/profiles.cc.o.d"
  "CMakeFiles/dlsim_workload.dir/program.cc.o"
  "CMakeFiles/dlsim_workload.dir/program.cc.o.d"
  "libdlsim_workload.a"
  "libdlsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
