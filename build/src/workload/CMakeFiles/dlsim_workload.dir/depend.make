# Empty dependencies file for dlsim_workload.
# This may be replaced when dependencies are built.
