file(REMOVE_RECURSE
  "libdlsim_workload.a"
)
