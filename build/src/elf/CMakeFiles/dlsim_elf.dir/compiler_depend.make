# Empty compiler generated dependencies file for dlsim_elf.
# This may be replaced when dependencies are built.
