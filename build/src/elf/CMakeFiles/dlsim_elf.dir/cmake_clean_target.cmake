file(REMOVE_RECURSE
  "libdlsim_elf.a"
)
