file(REMOVE_RECURSE
  "CMakeFiles/dlsim_elf.dir/builder.cc.o"
  "CMakeFiles/dlsim_elf.dir/builder.cc.o.d"
  "CMakeFiles/dlsim_elf.dir/module.cc.o"
  "CMakeFiles/dlsim_elf.dir/module.cc.o.d"
  "libdlsim_elf.a"
  "libdlsim_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
