file(REMOVE_RECURSE
  "CMakeFiles/dlsim_sim.dir/multicore.cc.o"
  "CMakeFiles/dlsim_sim.dir/multicore.cc.o.d"
  "CMakeFiles/dlsim_sim.dir/system.cc.o"
  "CMakeFiles/dlsim_sim.dir/system.cc.o.d"
  "libdlsim_sim.a"
  "libdlsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
