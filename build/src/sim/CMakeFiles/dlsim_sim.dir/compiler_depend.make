# Empty compiler generated dependencies file for dlsim_sim.
# This may be replaced when dependencies are built.
