file(REMOVE_RECURSE
  "libdlsim_sim.a"
)
