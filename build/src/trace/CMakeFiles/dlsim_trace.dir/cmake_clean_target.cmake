file(REMOVE_RECURSE
  "libdlsim_trace.a"
)
