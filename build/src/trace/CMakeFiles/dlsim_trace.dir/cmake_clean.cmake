file(REMOVE_RECURSE
  "CMakeFiles/dlsim_trace.dir/replay.cc.o"
  "CMakeFiles/dlsim_trace.dir/replay.cc.o.d"
  "CMakeFiles/dlsim_trace.dir/trace.cc.o"
  "CMakeFiles/dlsim_trace.dir/trace.cc.o.d"
  "libdlsim_trace.a"
  "libdlsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
