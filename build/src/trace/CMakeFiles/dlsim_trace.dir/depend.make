# Empty dependencies file for dlsim_trace.
# This may be replaced when dependencies are built.
