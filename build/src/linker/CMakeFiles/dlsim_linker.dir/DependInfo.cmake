
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linker/dynamic_linker.cc" "src/linker/CMakeFiles/dlsim_linker.dir/dynamic_linker.cc.o" "gcc" "src/linker/CMakeFiles/dlsim_linker.dir/dynamic_linker.cc.o.d"
  "/root/repo/src/linker/image.cc" "src/linker/CMakeFiles/dlsim_linker.dir/image.cc.o" "gcc" "src/linker/CMakeFiles/dlsim_linker.dir/image.cc.o.d"
  "/root/repo/src/linker/loader.cc" "src/linker/CMakeFiles/dlsim_linker.dir/loader.cc.o" "gcc" "src/linker/CMakeFiles/dlsim_linker.dir/loader.cc.o.d"
  "/root/repo/src/linker/patcher.cc" "src/linker/CMakeFiles/dlsim_linker.dir/patcher.cc.o" "gcc" "src/linker/CMakeFiles/dlsim_linker.dir/patcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elf/CMakeFiles/dlsim_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dlsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dlsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
