# Empty compiler generated dependencies file for dlsim_linker.
# This may be replaced when dependencies are built.
