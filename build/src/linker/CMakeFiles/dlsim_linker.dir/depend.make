# Empty dependencies file for dlsim_linker.
# This may be replaced when dependencies are built.
