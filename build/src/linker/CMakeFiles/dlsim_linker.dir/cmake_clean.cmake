file(REMOVE_RECURSE
  "CMakeFiles/dlsim_linker.dir/dynamic_linker.cc.o"
  "CMakeFiles/dlsim_linker.dir/dynamic_linker.cc.o.d"
  "CMakeFiles/dlsim_linker.dir/image.cc.o"
  "CMakeFiles/dlsim_linker.dir/image.cc.o.d"
  "CMakeFiles/dlsim_linker.dir/loader.cc.o"
  "CMakeFiles/dlsim_linker.dir/loader.cc.o.d"
  "CMakeFiles/dlsim_linker.dir/patcher.cc.o"
  "CMakeFiles/dlsim_linker.dir/patcher.cc.o.d"
  "libdlsim_linker.a"
  "libdlsim_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
