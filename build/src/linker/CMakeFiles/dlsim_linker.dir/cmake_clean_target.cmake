file(REMOVE_RECURSE
  "libdlsim_linker.a"
)
