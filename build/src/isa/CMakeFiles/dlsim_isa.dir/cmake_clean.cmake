file(REMOVE_RECURSE
  "CMakeFiles/dlsim_isa.dir/instruction.cc.o"
  "CMakeFiles/dlsim_isa.dir/instruction.cc.o.d"
  "CMakeFiles/dlsim_isa.dir/opcode.cc.o"
  "CMakeFiles/dlsim_isa.dir/opcode.cc.o.d"
  "libdlsim_isa.a"
  "libdlsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
