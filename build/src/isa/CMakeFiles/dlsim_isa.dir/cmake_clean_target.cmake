file(REMOVE_RECURSE
  "libdlsim_isa.a"
)
