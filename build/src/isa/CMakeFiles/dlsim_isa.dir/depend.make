# Empty dependencies file for dlsim_isa.
# This may be replaced when dependencies are built.
