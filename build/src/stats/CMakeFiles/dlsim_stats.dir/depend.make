# Empty dependencies file for dlsim_stats.
# This may be replaced when dependencies are built.
