file(REMOVE_RECURSE
  "libdlsim_stats.a"
)
