file(REMOVE_RECURSE
  "CMakeFiles/dlsim_stats.dir/cdf.cc.o"
  "CMakeFiles/dlsim_stats.dir/cdf.cc.o.d"
  "CMakeFiles/dlsim_stats.dir/histogram.cc.o"
  "CMakeFiles/dlsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dlsim_stats.dir/rng.cc.o"
  "CMakeFiles/dlsim_stats.dir/rng.cc.o.d"
  "CMakeFiles/dlsim_stats.dir/table.cc.o"
  "CMakeFiles/dlsim_stats.dir/table.cc.o.d"
  "libdlsim_stats.a"
  "libdlsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
