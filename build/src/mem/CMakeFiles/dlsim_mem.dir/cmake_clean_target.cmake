file(REMOVE_RECURSE
  "libdlsim_mem.a"
)
