file(REMOVE_RECURSE
  "CMakeFiles/dlsim_mem.dir/address_space.cc.o"
  "CMakeFiles/dlsim_mem.dir/address_space.cc.o.d"
  "CMakeFiles/dlsim_mem.dir/cache.cc.o"
  "CMakeFiles/dlsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/dlsim_mem.dir/hierarchy.cc.o"
  "CMakeFiles/dlsim_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/dlsim_mem.dir/tlb.cc.o"
  "CMakeFiles/dlsim_mem.dir/tlb.cc.o.d"
  "libdlsim_mem.a"
  "libdlsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
