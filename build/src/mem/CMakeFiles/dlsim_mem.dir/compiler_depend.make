# Empty compiler generated dependencies file for dlsim_mem.
# This may be replaced when dependencies are built.
