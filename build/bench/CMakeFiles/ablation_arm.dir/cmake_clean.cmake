file(REMOVE_RECURSE
  "CMakeFiles/ablation_arm.dir/ablation_arm.cc.o"
  "CMakeFiles/ablation_arm.dir/ablation_arm.cc.o.d"
  "ablation_arm"
  "ablation_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
