# Empty dependencies file for ablation_arm.
# This may be replaced when dependencies are built.
