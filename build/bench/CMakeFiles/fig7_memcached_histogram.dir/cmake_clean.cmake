file(REMOVE_RECURSE
  "CMakeFiles/fig7_memcached_histogram.dir/fig7_memcached_histogram.cc.o"
  "CMakeFiles/fig7_memcached_histogram.dir/fig7_memcached_histogram.cc.o.d"
  "fig7_memcached_histogram"
  "fig7_memcached_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memcached_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
