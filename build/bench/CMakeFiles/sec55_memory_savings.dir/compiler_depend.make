# Empty compiler generated dependencies file for sec55_memory_savings.
# This may be replaced when dependencies are built.
