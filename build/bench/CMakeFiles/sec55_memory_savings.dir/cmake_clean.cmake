file(REMOVE_RECURSE
  "CMakeFiles/sec55_memory_savings.dir/sec55_memory_savings.cc.o"
  "CMakeFiles/sec55_memory_savings.dir/sec55_memory_savings.cc.o.d"
  "sec55_memory_savings"
  "sec55_memory_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_memory_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
