file(REMOVE_RECURSE
  "CMakeFiles/table3_distinct_trampolines.dir/table3_distinct_trampolines.cc.o"
  "CMakeFiles/table3_distinct_trampolines.dir/table3_distinct_trampolines.cc.o.d"
  "table3_distinct_trampolines"
  "table3_distinct_trampolines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_distinct_trampolines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
