# Empty dependencies file for table3_distinct_trampolines.
# This may be replaced when dependencies are built.
