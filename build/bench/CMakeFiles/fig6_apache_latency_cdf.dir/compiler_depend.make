# Empty compiler generated dependencies file for fig6_apache_latency_cdf.
# This may be replaced when dependencies are built.
