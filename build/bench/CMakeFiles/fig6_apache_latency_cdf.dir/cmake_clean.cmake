file(REMOVE_RECURSE
  "CMakeFiles/fig6_apache_latency_cdf.dir/fig6_apache_latency_cdf.cc.o"
  "CMakeFiles/fig6_apache_latency_cdf.dir/fig6_apache_latency_cdf.cc.o.d"
  "fig6_apache_latency_cdf"
  "fig6_apache_latency_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_apache_latency_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
