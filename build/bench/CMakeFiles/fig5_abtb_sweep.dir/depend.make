# Empty dependencies file for fig5_abtb_sweep.
# This may be replaced when dependencies are built.
