
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_abtb_sweep.cc" "bench/CMakeFiles/fig5_abtb_sweep.dir/fig5_abtb_sweep.cc.o" "gcc" "bench/CMakeFiles/fig5_abtb_sweep.dir/fig5_abtb_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dlsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dlsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/dlsim_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/dlsim_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dlsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dlsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dlsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
