file(REMOVE_RECURSE
  "CMakeFiles/table5_firefox_peacekeeper.dir/table5_firefox_peacekeeper.cc.o"
  "CMakeFiles/table5_firefox_peacekeeper.dir/table5_firefox_peacekeeper.cc.o.d"
  "table5_firefox_peacekeeper"
  "table5_firefox_peacekeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_firefox_peacekeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
