# Empty dependencies file for table5_firefox_peacekeeper.
# This may be replaced when dependencies are built.
