file(REMOVE_RECURSE
  "CMakeFiles/table4_microarch_counters.dir/table4_microarch_counters.cc.o"
  "CMakeFiles/table4_microarch_counters.dir/table4_microarch_counters.cc.o.d"
  "table4_microarch_counters"
  "table4_microarch_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_microarch_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
