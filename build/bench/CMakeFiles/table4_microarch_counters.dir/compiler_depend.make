# Empty compiler generated dependencies file for table4_microarch_counters.
# This may be replaced when dependencies are built.
