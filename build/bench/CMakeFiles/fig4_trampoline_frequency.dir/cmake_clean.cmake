file(REMOVE_RECURSE
  "CMakeFiles/fig4_trampoline_frequency.dir/fig4_trampoline_frequency.cc.o"
  "CMakeFiles/fig4_trampoline_frequency.dir/fig4_trampoline_frequency.cc.o.d"
  "fig4_trampoline_frequency"
  "fig4_trampoline_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_trampoline_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
