# Empty dependencies file for fig4_trampoline_frequency.
# This may be replaced when dependencies are built.
