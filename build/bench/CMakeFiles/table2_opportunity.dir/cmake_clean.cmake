file(REMOVE_RECURSE
  "CMakeFiles/table2_opportunity.dir/table2_opportunity.cc.o"
  "CMakeFiles/table2_opportunity.dir/table2_opportunity.cc.o.d"
  "table2_opportunity"
  "table2_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
