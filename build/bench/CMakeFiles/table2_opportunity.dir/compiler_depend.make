# Empty compiler generated dependencies file for table2_opportunity.
# This may be replaced when dependencies are built.
