file(REMOVE_RECURSE
  "CMakeFiles/ablation_invalidation.dir/ablation_invalidation.cc.o"
  "CMakeFiles/ablation_invalidation.dir/ablation_invalidation.cc.o.d"
  "ablation_invalidation"
  "ablation_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
