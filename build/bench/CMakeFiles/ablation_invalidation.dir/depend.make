# Empty dependencies file for ablation_invalidation.
# This may be replaced when dependencies are built.
